// Package pcap implements the classic libpcap capture file format used by
// tcpdump and Wireshark — the tooling the paper uses to analyze beacon
// and sector-sweep bursts in Section 4.1. The writer produces files any
// libpcap consumer can open; the reader accepts both byte orders and both
// the microsecond and nanosecond timestamp variants.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers of the classic format.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// LinkType identifies the capture's link layer.
type LinkType uint32

// Link types relevant to this project.
const (
	// LinkTypeIEEE80211 is raw IEEE 802.11 (DLT 105).
	LinkTypeIEEE80211 LinkType = 105
	// LinkTypeUser0 (DLT 147) is reserved for private use.
	LinkTypeUser0 LinkType = 147
)

const (
	versionMajor = 2
	versionMinor = 4
	// MaxSnapLen is the snapshot length written to headers.
	MaxSnapLen = 65535
)

// Writer emits a pcap stream. Create with NewWriter, which writes the
// global header immediately.
type Writer struct {
	w        io.Writer
	linkType LinkType
	packets  int
}

// NewWriter writes the global header (microsecond timestamps, native
// little-endian) and returns the writer.
func NewWriter(w io.Writer, linkType LinkType) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(linkType))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	return &Writer{w: w, linkType: linkType}, nil
}

// WritePacket appends one record with the given capture timestamp.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if len(data) > MaxSnapLen {
		return fmt.Errorf("pcap: packet of %d bytes exceeds snap length", len(data))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	w.packets++
	return nil
}

// Packets reports how many records were written.
func (w *Writer) Packets() int { return w.packets }

// LinkType reports the stream's link type.
func (w *Writer) LinkType() LinkType { return w.linkType }

// Packet is one decoded capture record.
type Packet struct {
	// Time is the capture timestamp.
	Time time.Time
	// Data is the captured bytes (possibly truncated to SnapLen).
	Data []byte
	// OrigLen is the original on-air length.
	OrigLen int
}

// Reader parses a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType LinkType
	snapLen  uint32
}

// NewReader parses the global header and returns the reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#08x", magicLE)
	}
	if major := rd.order.Uint16(hdr[4:6]); major != versionMajor {
		return nil, fmt.Errorf("pcap: unsupported version %d", major)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	if rd.snapLen == 0 || rd.snapLen > 1<<24 {
		return nil, fmt.Errorf("pcap: implausible snap length %d", rd.snapLen)
	}
	rd.linkType = LinkType(rd.order.Uint32(hdr[20:24]))
	return rd, nil
}

// LinkType reports the stream's link type.
func (r *Reader) LinkType() LinkType { return r.linkType }

// Next returns the next record, or io.EOF at the end of the stream.
func (r *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: record header: %w", err)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	incl := r.order.Uint32(hdr[8:12])
	orig := r.order.Uint32(hdr[12:16])
	if incl > r.snapLen {
		return Packet{}, fmt.Errorf("pcap: record of %d bytes exceeds snap length %d", incl, r.snapLen)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: record body: %w", err)
	}
	nanos := int64(frac) * 1000
	if r.nanos {
		nanos = int64(frac)
	}
	return Packet{
		Time:    time.Unix(int64(sec), nanos).UTC(),
		Data:    data,
		OrigLen: int(orig),
	}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
