package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeIEEE80211)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2017, 12, 12, 10, 30, 0, 123456000, time.UTC)
	packets := [][]byte{
		{0x01, 0x02, 0x03},
		{},
		bytes.Repeat([]byte{0xaa}, 256),
	}
	for i, p := range packets {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 3 {
		t.Fatalf("Packets = %d", w.Packets())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeIEEE80211 {
		t.Fatalf("link type = %d", r.LinkType())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("records = %d", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, packets[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if p.OrigLen != len(packets[i]) {
			t.Fatalf("record %d orig len = %d", i, p.OrigLen)
		}
		want := ts.Add(time.Duration(i) * time.Millisecond)
		if !p.Time.Equal(want) {
			t.Fatalf("record %d time %v, want %v", i, p.Time, want)
		}
	}
}

func TestGlobalHeaderLayout(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, LinkTypeUser0); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != 147 {
		t.Fatal("bad link type")
	}
}

func TestReaderBigEndianAndNanos(t *testing.T) {
	// Hand-construct a big-endian nanosecond stream.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b23c4d)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], 105)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1500000000)
	binary.BigEndian.PutUint32(rec[4:8], 42) // 42 ns
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec)
	buf.Write([]byte{0xde, 0xad})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Time.Unix() != 1500000000 || p.Time.Nanosecond() != 42 {
		t.Fatalf("timestamp = %v", p.Time)
	}
	if !bytes.Equal(p.Data, []byte{0xde, 0xad}) {
		t.Fatalf("data = %x", p.Data)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("zero magic accepted")
	}
	// Truncated record body.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeIEEE80211)
	_ = w.WritePacket(time.Now(), []byte{1, 2, 3, 4})
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record: %v", err)
	}
}

func TestWriterRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.WritePacket(time.Now(), make([]byte, MaxSnapLen+1)); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secOffsets []uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkTypeIEEE80211)
		if err != nil {
			return false
		}
		base := time.Unix(1700000000, 0).UTC()
		n := len(payloads)
		for i, p := range payloads {
			off := time.Duration(0)
			if i < len(secOffsets) {
				off = time.Duration(secOffsets[i]) * time.Second
			}
			if err := w.WritePacket(base.Add(off), p); err != nil {
				return false
			}
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
