module talon

go 1.22
