module talon

go 1.24
