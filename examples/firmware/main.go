// Firmware: the jailbreak workflow of Section 3 at API level. It walks
// through the QCA9500's memory map (write-protected low code partitions,
// writable high aliases), applies the two Nexmon-style patches, drives the
// WMI command interface and reads the measurement ring buffer — the
// plumbing underneath compressive sector selection on real hardware.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"talon"
	"talon/internal/dot11ad"
	"talon/internal/nexmon"
	"talon/internal/wil"
)

func main() {
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "router", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	peer, err := talon.NewDevice(talon.DeviceConfig{Name: "peer", Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fw := dut.Firmware()
	mem := fw.Memory()

	fmt.Println("== memory map (Figure 1) ==")
	for _, addr := range []uint32{nexmon.UcodeCodeBase, nexmon.UcodeDataBase, nexmon.FwCodeBase, nexmon.FwDataBase} {
		name, _ := mem.RegionName(addr)
		alias, _ := mem.AliasOf(addr)
		fmt.Printf("  %-10s low %#08x  alias %#08x\n", name, addr, alias)
	}

	fmt.Println("\n== the write-protection discovery ==")
	target := uint32(nexmon.UcodeCodeBase + 0x16000)
	if err := mem.Write(target, []byte{0xde, 0xad}); err != nil {
		fmt.Printf("  direct write fails:   %v\n", err)
	}
	alias, _ := mem.AliasOf(target)
	if err := mem.Write(alias, []byte{0xde, 0xad}); err != nil {
		log.Fatal(err)
	}
	back, _ := mem.Read(target, 2)
	fmt.Printf("  via alias %#08x it lands, visible at %#08x: % x\n", alias, target, back)

	fmt.Println("\n== applying the firmware patches ==")
	for _, p := range []nexmon.Patch{wil.SweepDumpPatch(), wil.SectorOverridePatch()} {
		if err := fw.ApplyPatch(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  applied %-16s at %#08x\n", p.Name, p.Addr)
	}

	fmt.Println("\n== exercising the patched firmware over the air ==")
	if err := peer.Jailbreak(); err != nil {
		log.Fatal(err)
	}
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 3
	peer.SetPose(staPose)
	link := talon.NewLink(talon.AnechoicChamber(), dut, peer)
	if _, err := link.RunTXSS(peer, dut, dot11ad.SweepSchedule()); err != nil {
		log.Fatal(err)
	}

	// WMI: poll the ring-buffer sequence counter, then read the dump.
	reply, err := fw.HandleWMI(wil.WMIGetSweepSeq, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  WMI sweep-seq reply: %d records\n", binary.LittleEndian.Uint32(reply))
	recs, err := dut.SweepDump()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ring buffer has %d entries; first three:\n", len(recs))
	for _, r := range recs[:min(3, len(recs))] {
		fmt.Printf("    seq %2d sector %2v  SNR %6.2f dB  RSSI %4.0f dBm\n", r.Seq, r.Sector, r.SNR, r.RSSI)
	}

	fmt.Println("\n== forcing the feedback sector via WMI ==")
	if err := dut.ForceSector(24); err != nil {
		log.Fatal(err)
	}
	id, ok := fw.FeedbackSector()
	fmt.Printf("  feedback field now carries sector %v (ok=%v)\n", id, ok)
	if err := dut.ClearForcedSector(); err != nil {
		log.Fatal(err)
	}
	id, ok = fw.FeedbackSector()
	fmt.Printf("  cleared: stock algorithm selects sector %v (ok=%v)\n", id, ok)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
