// Faulty: train over a hostile 60 GHz channel. A deterministic fault
// injector (Gilbert–Elliott burst loss, RSSI drift, stale feedback,
// ring-drop storms, transient WMI failures) sits between the devices;
// the resilient trainer retries with fresh probe subsets, verifies the
// pick with a post-selection SNR probe, and degrades to the stock full
// sector sweep when compressive training cannot be trusted.
package main

import (
	"context"
	"fmt"
	"log"

	"talon"
)

func main() {
	ap, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: 20})
	if err != nil {
		log.Fatal(err)
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*talon.Device{ap, sta} {
		if err := d.Jailbreak(); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()
	patterns, err := talon.MeasurePatterns(ctx, ap, sta, talon.DefaultPatternGrid(), 3)
	if err != nil {
		log.Fatal(err)
	}

	link := talon.NewLink(talon.Lab(), ap, sta)
	apPose := talon.Pose{}
	apPose.Pos.Z = 1.2
	ap.SetPose(apPose)
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 3
	staPose.Pos.Z = 1.2
	sta.SetPose(staPose)

	// A clean reference first: what does CSS pick with no impairments?
	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	clean, err := trainer.Run(ctx, ap, sta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean channel:  sector %v, true SNR %.1f dB\n",
		clean.Sector, link.TrueSNR(ap, sta, clean.Sector))

	// Now make the channel hostile: 20% frame loss in bursts of ~4,
	// plus measurement drift, stale feedback and flaky WMI — all
	// deterministic under the seed.
	link.SetInjector(talon.Standard60GHzFaults(0.20, 4, 99))

	// A resilient run retries up to three times with exponential
	// backoff (virtual clock — no real sleeping) and verifies the
	// selection with a post-training SNR probe; if everything fails it
	// falls back to the stock 34-sector sweep rather than erroring.
	res, err := trainer.Run(ctx, ap, sta,
		talon.WithRetry(3, talon.DefaultRetryBackoff),
		talon.WithSNRCheck(8))
	if err != nil {
		log.Fatal(err)
	}

	link.SetInjector(nil) // read the truth without impairments
	fmt.Printf("lossy channel:  sector %v, true SNR %.1f dB after %d attempt(s)\n",
		res.Sector, link.TrueSNR(ap, sta, res.Sector), res.Attempts)
	if res.Degraded() {
		fmt.Printf("training degraded to the full sweep (reason: %s)\n",
			res.Selection.FallbackReason)
	} else {
		fmt.Println("compressive training survived the loss")
	}
}
