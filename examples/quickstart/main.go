// Quickstart: measure a device's sector patterns once, then use
// compressive sector selection (CSS) to train a conference-room link with
// 14 probes instead of the stock 34-sector sweep, and compare the two.
package main

import (
	"context"
	"fmt"
	"log"

	"talon"
)

func main() {
	// Two simulated Talon AD7200 routers. The seed freezes each unit's
	// hardware imperfections.
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's firmware patches: expose measurements, allow forcing
	// the feedback sector.
	if err := dut.Jailbreak(); err != nil {
		log.Fatal(err)
	}
	if err := sta.Jailbreak(); err != nil {
		log.Fatal(err)
	}

	// One-time pattern campaign in the anechoic chamber (Section 4).
	fmt.Println("measuring sector patterns in the chamber...")
	ctx := context.Background()
	patterns, err := talon.MeasurePatterns(ctx, dut, sta, talon.DefaultPatternGrid(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d sector patterns\n\n", patterns.Len())

	// Deploy the pair in the conference room, 6 m apart, the AP turned
	// 25° away from the station.
	link := talon.NewLink(talon.ConferenceRoom(), dut, sta)
	apPose := talon.Pose{Yaw: -25}
	apPose.Pos.Z = 1.2
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 6
	staPose.Pos.Z = 1.2
	dut.SetPose(apPose)
	sta.SetPose(staPose)

	// Compressive training with 14 probing sectors.
	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	res, err := trainer.Run(ctx, dut, sta, talon.Mutual())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSS probed %d sectors: %v\n", len(res.Probed), res.Probed)
	if !res.Selection.Fallback {
		fmt.Printf("estimated departure angle: (%.1f°, %.1f°)\n", res.Selection.AoA.Az, res.Selection.AoA.El)
	}
	fmt.Printf("selected sector %v (true SNR %.1f dB)\n", res.Sector, link.TrueSNR(dut, sta, res.Sector))
	fmt.Printf("training airtime: %.0f µs vs %.0f µs for the full sweep (%.1fx faster)\n\n",
		1e6*talon.MutualTrainingTime(14), 1e6*talon.MutualTrainingTime(34),
		talon.MutualTrainingTime(34)/talon.MutualTrainingTime(14))

	// Reference: what the stock full sector sweep would pick.
	best, bestSNR := talon.SectorID(0), -1e9
	for _, id := range talon.TalonTXSectors() {
		if snr := link.TrueSNR(dut, sta, id); snr > bestSNR {
			best, bestSNR = id, snr
		}
	}
	fmt.Printf("true optimum: sector %v at %.1f dB — CSS is %.1f dB off after probing %d/34 sectors\n",
		best, bestSNR, bestSNR-link.TrueSNR(dut, sta, res.Sector), len(res.Probed))
}
