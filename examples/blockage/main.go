// Blockage: survive a blocked line of sight without retraining. One
// compressive probing round estimates both the LOS and the whiteboard
// reflection; when a person steps into the LOS, the link switches to the
// pre-computed backup sector pointing at the reflection — the BeamSpy
// idea built on this paper's multipath-capable estimator.
package main

import (
	"context"
	"fmt"
	"log"

	"talon"
	"talon/internal/channel"
)

func main() {
	ap, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*talon.Device{ap, sta} {
		if err := d.Jailbreak(); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()
	patterns, err := talon.MeasurePatterns(ctx, ap, sta, talon.DefaultPatternGrid(), 3)
	if err != nil {
		log.Fatal(err)
	}

	// A conference room with a metal whiteboard beside the link: the
	// environment offers a usable reflected path.
	room := talon.ConferenceRoom()
	room.Reflectors = append(room.Reflectors,
		channel.NewWallY("metal-whiteboard", 1.6, 1.0, 5.0, 0.6, 2.0, 5))
	blockedRoom := talon.ConferenceRoom()
	blockedRoom.Reflectors = room.Reflectors
	blockedRoom.LOSBlocked = true

	apPose := talon.Pose{}
	apPose.Pos.Z = 1.2
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 6
	staPose.Pos.Z = 1.2
	ap.SetPose(apPose)
	sta.SetPose(staPose)

	link := talon.NewLink(room, ap, sta)
	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(24), talon.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}

	// Train once; keep both the primary and the backup sector. Retry a
	// few rounds if the reflection did not show in the random subset.
	var res *talon.RunResult
	var backup talon.BackupSelection
	for i := 0; i < 8; i++ {
		res, err = trainer.Run(ctx, ap, sta, talon.WithBackup(talon.DefaultBackupSeparationDeg))
		if err != nil {
			log.Fatal(err)
		}
		backup = *res.Backup
		if backup.HasBackup {
			break
		}
	}
	fmt.Printf("primary path: (%.1f°, %.1f°) -> sector %v, true SNR %.1f dB\n",
		backup.Primary.AoA.Az, backup.Primary.AoA.El, res.Sector, link.TrueSNR(ap, sta, res.Sector))
	if !backup.HasBackup {
		fmt.Println("no secondary path detected; nothing to fall back to")
		return
	}
	fmt.Printf("backup path:  (%.1f°, %.1f°) -> sector %v, true SNR %.1f dB\n",
		backup.Backup.AoA.Az, backup.Backup.AoA.El, backup.Backup.Sector,
		link.TrueSNR(ap, sta, backup.Backup.Sector))

	// Someone walks into the line of sight.
	blocked := talon.NewLink(blockedRoom, ap, sta)
	fmt.Println("\n-- LOS blocked --")
	fmt.Printf("primary sector %v now: %.1f dB (link dead)\n",
		res.Sector, blocked.TrueSNR(ap, sta, res.Sector))
	fmt.Printf("backup  sector %v now: %.1f dB (link survives on the reflection)\n",
		backup.Backup.Sector, blocked.TrueSNR(ap, sta, backup.Backup.Sector))

	best, bestSNR := talon.SectorID(0), -1e9
	for _, id := range talon.TalonTXSectors() {
		if snr := blocked.TrueSNR(ap, sta, id); snr > bestSNR {
			best, bestSNR = id, snr
		}
	}
	fmt.Printf("oracle under blockage: sector %v at %.1f dB — the backup was %.1f dB away, with zero retraining\n",
		best, bestSNR, bestSNR-blocked.TrueSNR(ap, sta, backup.Backup.Sector))
}
