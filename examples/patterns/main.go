// Patterns: reproduce the feel of the paper's Figures 5 and 6 — measure
// the azimuth-plane radiation pattern of every predefined sector in the
// anechoic chamber and render them as ASCII plots, then extend a few
// sectors to 3D and show their elevation structure.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"

	"talon"
	"talon/internal/sector"
)

func main() {
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "dut", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	probe, err := talon.NewDevice(talon.DeviceConfig{Name: "probe", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*talon.Device{dut, probe} {
		if err := d.Jailbreak(); err != nil {
			log.Fatal(err)
		}
	}

	// Azimuth cut, the Figure 5 view (coarser than the paper's 0.9° to
	// keep the example fast).
	azGrid, err := talon.NewGrid(-90, 90, 3, 0, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measuring azimuth-plane patterns (-90°..90°, elevation 0)...")
	ctx := context.Background()
	azSet, err := talon.MeasurePatterns(ctx, dut, probe, azGrid, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, id := range azSet.IDs() {
		p := azSet.Get(id)
		fmt.Printf("sector %-3v %s", id, sparkline(p.AzimuthCut(0)))
		az, _, g := p.Peak()
		fmt.Printf("  peak %5.1f dB @ %6.1f°\n", g, az)
	}

	// 3D view of selected sectors, the Figure 6 insight: sector 5 only
	// reveals its main lobe above the azimuth plane.
	grid3D, err := talon.NewGrid(-90, 90, 6, 0, 32, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasuring spherical patterns (elevation 0..32°)...")
	set3D, err := talon.MeasurePatterns(ctx, dut, probe, grid3D, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []talon.SectorID{5, 26, 63, sector.RX} {
		p := set3D.Get(id)
		az, el, g := p.Peak()
		fmt.Printf("\nsector %v: 3D peak %.1f dB at (%.0f°, %.0f°)\n", id, g, az, el)
		for _, elevation := range []float64{0, 16, 32} {
			fmt.Printf("  el %2.0f° %s\n", elevation, sparkline(p.AzimuthCut(elevation)))
		}
	}
	fmt.Println("\nnote how sector 5 gains strength above the plane while 26 (the")
	fmt.Println("torus-shaped wide sector) fades there, matching Section 4.5.")
}

// sparkline renders a gain row as a bar string from the firmware's -7 dB
// floor to its 12 dB ceiling.
func sparkline(row []float64) string {
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for _, v := range row {
		if math.IsNaN(v) {
			b.WriteByte('?')
			continue
		}
		t := (v + 7) / 19
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		b.WriteByte(ramp[int(t*float64(len(ramp)-1))])
	}
	return b.String()
}
