// Tracking: keep a moving receiver connected with frequent compressive
// retraining, the Section 7 scenario. A station orbits the access point;
// every beacon-ish interval the link retrains. The adaptive probe-count
// controller spends few probes while the station dwells and ramps up when
// it moves, tracking as well as a full sweep at a fraction of the
// airtime.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"talon"
	"talon/internal/core"
	"talon/internal/geom"
)

func main() {
	ap, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*talon.Device{ap, sta} {
		if err := d.Jailbreak(); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()
	patterns, err := talon.MeasurePatterns(ctx, ap, sta, talon.DefaultPatternGrid(), 3)
	if err != nil {
		log.Fatal(err)
	}

	link := talon.NewLink(talon.Lab(), ap, sta)
	apPose := talon.Pose{}
	apPose.Pos.Z = 1.2
	ap.SetPose(apPose)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(34), talon.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	ctrl := core.NewAdaptiveController(8, 34)

	// The station's path: dwell at 20°, walk to -35°, dwell, return.
	angleAt := func(step int) float64 {
		switch {
		case step < 15:
			return 20
		case step < 30:
			return 20 - 55*float64(step-15)/15
		case step < 45:
			return -35
		default:
			return -35 + 40*float64(step-45)/15
		}
	}

	fmt.Println("step  sta-az  probes  sector  true-SNR  loss   note")
	totalProbes, fullProbes := 0, 0
	for step := 0; step < 60; step++ {
		az := angleAt(step)
		staPose := talon.Pose{Yaw: 180 + az}
		staPose.Pos.X = 3 * math.Cos(geom.Deg2Rad(az))
		staPose.Pos.Y = 3 * math.Sin(geom.Deg2Rad(az))
		staPose.Pos.Z = 1.2
		sta.SetPose(staPose)

		if err := trainer.SetM(ctrl.M()); err != nil {
			log.Fatal(err)
		}
		res, err := trainer.Run(ctx, ap, sta)
		if err != nil {
			log.Fatal(err)
		}
		ctrl.Observe(res.Sector)
		totalProbes += len(res.Probed)
		fullProbes += 34

		best := math.Inf(-1)
		for _, id := range talon.TalonTXSectors() {
			if snr := link.TrueSNR(ap, sta, id); snr > best {
				best = snr
			}
		}
		got := link.TrueSNR(ap, sta, res.Sector)
		note := ""
		if step == 15 || step == 45 {
			note = "station starts moving"
		}
		if step == 30 {
			note = "station dwells"
		}
		if step%5 == 0 || note != "" {
			fmt.Printf("%4d  %5.1f°  %6d  %6v  %7.1f dB %5.1f  %s\n",
				step, az, len(res.Probed), res.Sector, got, best-got, note)
		}
	}
	fmt.Printf("\nadaptive controller probed %d sectors over 60 rounds (full sweeps: %d) — %.0f%% airtime saved\n",
		totalProbes, fullProbes, 100*(1-float64(totalProbes)/float64(fullProbes)))
}
