// Package talon is a simulation-backed reimplementation of "Compressive
// Millimeter-Wave Sector Selection in Off-the-Shelf IEEE 802.11ad
// Devices" (Steinmetzer et al., CoNEXT 2017).
//
// It bundles the full stack the paper builds on — a 32-element phased
// array with the Talon AD7200's 35 predefined sectors, 60 GHz propagation
// environments, the QCA9500 firmware with its Nexmon-style patches and
// WMI interface, the IEEE 802.11ad sector-sweep MAC, and the anechoic
// chamber testbed — plus the contribution itself: compressive sector
// selection (CSS), which probes a random subset of M sectors, estimates
// the signal's departure angle by correlating the measurements against
// the device's measured 3D sector patterns, and picks the best of all N
// sectors toward that angle. Estimation runs on a precomputed parallel
// correlation engine (see DESIGN.md, "Correlation engine").
//
// The quickest route from zero to a trained link:
//
//	ctx := context.Background()
//	dut, _ := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: 1})
//	peer, _ := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: 2})
//	dut.Jailbreak()
//	peer.Jailbreak()
//	link := talon.NewLink(talon.ConferenceRoom(), dut, peer)
//	patterns, _ := talon.MeasurePatterns(ctx, dut, peer, talon.DefaultPatternGrid(), 3)
//	trainer, _ := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(42))
//	res, _ := trainer.Run(ctx, dut, peer)
//	fmt.Println("transmit on sector", res.Sector)
//
// # Training
//
// Trainer.Run is the single training entry point; options extend the
// round: Mutual adds the full sweep handshake, WithBackup extracts a
// backup sector toward a secondary path, WithTracer observes the stages.
// Train, TrainMutual and TrainWithBackup survive as thin wrappers over
// Run with the corresponding options.
//
// # Cancellation
//
// Every long-running entry point — MeasurePatterns, Trainer.Run and its
// Train* wrappers, and the campaign drivers in internal/eval — takes a
// context.Context as its first parameter and returns ctx.Err() promptly
// when it is cancelled (checked between grid points, probes and trials).
//
// # Construction
//
// NewTrainer takes functional options instead of positional knobs:
// WithM sets the probe budget (default 14, the paper's operating point),
// WithSeed the probing RNG seed, WithEstimatorOptions the estimator
// tuning.
//
// # Errors
//
// Failure classes are exposed as sentinels matchable with errors.Is:
// ErrNotJailbroken (a firmware feature needs a missing patch),
// ErrTooFewProbes (probe budget or reported measurements below the
// minimum), ErrDegenerateSurface (measurements carry no directional
// information), and ErrUnknownSector (a sector ID the hardware does not
// know).
package talon

import (
	"context"
	"fmt"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/geom"
	"talon/internal/pattern"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// Re-exported building blocks. The aliases expose the full method sets of
// the internal implementations as public API.
type (
	// Device is a simulated Talon AD7200 router.
	Device = wil.Device
	// DeviceConfig configures a Device.
	DeviceConfig = wil.Config
	// Link couples two devices through a propagation environment.
	Link = wil.Link
	// Environment is a 60 GHz propagation scenario.
	Environment = channel.Environment
	// Pose places a device (position, yaw, tilt).
	Pose = channel.Pose
	// PatternSet holds measured per-sector radiation patterns.
	PatternSet = pattern.Set
	// Grid is an azimuth × elevation sampling grid in degrees.
	Grid = geom.Grid
	// Estimator runs compressive angle-of-arrival estimation.
	Estimator = core.Estimator
	// EstimatorOptions tunes the estimator.
	EstimatorOptions = core.Options
	// Probe is one probed sector's measurement (or miss).
	Probe = core.Probe
	// Selection is a compressive sector selection outcome.
	Selection = core.Selection
	// SectorID identifies an antenna sector (6-bit on-air ID).
	SectorID = sector.ID
	// MACAddr is an EUI-48 station address.
	MACAddr = dot11ad.MACAddr
	// SLSResult summarizes a mutual sector-level sweep.
	SLSResult = wil.SLSResult
	// FallbackReason classifies why a resilient Run degraded to the
	// full-sweep baseline (see Selection.FallbackReason).
	FallbackReason = core.FallbackReason
	// FaultInjector is an impairment layer installable on a Link with
	// SetInjector; build one from internal/fault or use
	// Standard60GHzFaults.
	FaultInjector = fault.Injector
	// Kernel names a correlation-kernel implementation (see
	// EstimatorOptions.Kernel and WithFloatKernel).
	Kernel = core.Kernel
)

// The correlation kernels an estimator can run on (EstimatorOptions.Kernel).
const (
	// KernelAuto picks the default kernel — currently KernelQuantInt16.
	KernelAuto = core.KernelAuto
	// KernelQuantInt16 is the cache-tiled quantized int16 kernel.
	KernelQuantInt16 = core.KernelQuantInt16
	// KernelFloat64 is the exact float64 reference kernel.
	KernelFloat64 = core.KernelFloat64
)

// The FallbackReason values a degraded Selection reports.
const (
	FallbackNone              = core.FallbackNone
	FallbackTooFewProbes      = core.FallbackTooFewProbes
	FallbackDegenerateSurface = core.FallbackDegenerateSurface
	FallbackSNRCheck          = core.FallbackSNRCheck
	FallbackTransientFault    = core.FallbackTransientFault
)

// Standard60GHzFaults returns the default hostile-channel impairment
// preset: Gilbert–Elliott frame loss at the given stationary rate with
// meanBurst-frame bursts, RSSI bias and drift, sparse stale feedback,
// record-drop storms and transient WMI failures, all deterministic in
// seed. Install it with Link.SetInjector; clear with SetInjector(nil).
func Standard60GHzFaults(lossRate, meanBurst float64, seed int64) FaultInjector {
	return fault.Standard60GHz(lossRate, meanBurst, seed)
}

// Sentinel errors of the public API, re-exported from the internal
// packages that produce them. Match with errors.Is; all returned errors
// wrap these with call-site detail.
var (
	// ErrNotJailbroken reports a firmware feature whose backing patch is
	// not applied (sweep dump reads, sector override).
	ErrNotJailbroken = wil.ErrNotJailbroken
	// ErrTooFewProbes reports a probe budget out of range or a probe
	// vector with too few usable measurements.
	ErrTooFewProbes = core.ErrTooFewProbes
	// ErrDegenerateSurface reports a correlation surface with no positive
	// maximum: the measurements carry no directional information.
	ErrDegenerateSurface = core.ErrDegenerateSurface
	// ErrUnknownSector reports a sector ID outside the hardware's
	// codebook or the 6-bit on-air range.
	ErrUnknownSector = sector.ErrUnknown
	// ErrInjected marks failures produced by the deterministic fault
	// layer (internal/fault); resilient callers treat them as
	// transient. ErrSNRCheckFailed (run.go) joins these sentinels.
	ErrInjected = fault.ErrInjected
)

// NewDevice builds a simulated router. See wil.Config for the knobs; only
// Name is required, Seed freezes the unit's hardware imperfections.
func NewDevice(cfg DeviceConfig) (*Device, error) { return wil.NewDevice(cfg) }

// NewLink couples a and b inside env with the calibrated default budget.
func NewLink(env *Environment, a, b *Device) *Link { return wil.NewLink(env, a, b) }

// AnechoicChamber returns a reflection-free environment.
func AnechoicChamber() *Environment { return channel.AnechoicChamber() }

// Lab returns the paper's lab environment (weak multipath).
func Lab() *Environment { return channel.Lab() }

// ConferenceRoom returns the paper's conference room (whiteboard
// reflections, stronger multipath).
func ConferenceRoom() *Environment { return channel.ConferenceRoom() }

// DefaultPatternGrid returns a practical grid for the pattern campaign:
// azimuth ±90° in 2° steps, elevation 0–32° in 4° steps (the paper's
// spherical coverage at a resolution that keeps the campaign fast).
func DefaultPatternGrid() *Grid {
	g, err := geom.UniformGrid(-90, 90, 2, 0, 32, 4)
	if err != nil {
		panic(err) // static arguments
	}
	return g
}

// NewGrid builds a uniform measurement grid; steps are in degrees.
func NewGrid(azMin, azMax, azStep, elMin, elMax, elStep float64) (*Grid, error) {
	return geom.UniformGrid(azMin, azMax, azStep, elMin, elMax, elStep)
}

// MeasurePatterns runs the Section 4 anechoic-chamber campaign for dut:
// dut rotates on the measurement head, probe observes from 3 m away, and
// all 35 sector patterns are measured on grid, averaging repeats sweeps
// per point. Both devices are repositioned by the campaign; dut must be
// jailbroken so measurements are readable. The context is observed
// between grid points; a cancelled campaign returns ctx.Err().
func MeasurePatterns(ctx context.Context, dut, probe *Device, grid *Grid, repeats int) (*PatternSet, error) {
	link := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(link, dut, probe, 1)
	campaign.Repeats = repeats
	return campaign.MeasureAllPatterns(ctx, grid)
}

// NewEstimator builds a CSS estimator over measured patterns and
// precomputes its correlation dictionary. The set must not be mutated
// afterwards.
func NewEstimator(patterns *PatternSet, opts EstimatorOptions) (*Estimator, error) {
	return core.NewEstimator(patterns, opts)
}

// TrainResult is the outcome of one compressive training round.
type TrainResult struct {
	// Selection is the CSS outcome for the transmitter's sector.
	Selection Selection
	// Sector is the chosen transmit sector (shorthand for
	// Selection.Sector).
	Sector SectorID
	// Probed lists the sectors that were probed.
	Probed []SectorID
	// SLS carries the protocol-level result when the training ran the
	// full sector-level sweep.
	SLS *SLSResult
}

// Trainer performs compressive beamtraining over a link: it probes a
// random M-of-N sector subset, estimates the departure angle against the
// transmitter's measured patterns, selects the best sector and arms the
// receiver's feedback override so the standard sweep handshake carries
// the compressive choice.
type Trainer struct {
	link *Link
	est  *Estimator
	m    int
	rng  *stats.RNG
	runs int
}

// TrainerOption configures NewTrainer.
type TrainerOption func(*trainerConfig)

type trainerConfig struct {
	m       int
	seed    int64
	estOpts EstimatorOptions
	exact   bool
	float   bool
}

// DefaultM is the probe budget a Trainer uses unless WithM overrides it:
// the paper's M = 14 operating point.
const DefaultM = 14

// WithM sets the probe budget per training round (2–34; default
// DefaultM).
func WithM(m int) TrainerOption {
	return func(c *trainerConfig) { c.m = m }
}

// WithSeed seeds the probing-subset RNG (default 1).
func WithSeed(seed int64) TrainerOption {
	return func(c *trainerConfig) { c.seed = seed }
}

// WithEstimatorOptions tunes the estimator the trainer builds over the
// pattern set (SNR-only correlation, refinement, fallback threshold…).
func WithEstimatorOptions(opts EstimatorOptions) TrainerOption {
	return func(c *trainerConfig) { c.estOpts = opts }
}

// WithExactSearch forces the paper-faithful exhaustive grid search
// instead of the default hierarchical coarse-to-fine search. The
// hierarchical search selects the same sector on essentially all
// realistic probe vectors at a fraction of the cost (see DESIGN.md §12);
// exact mode preserves the original engine's bit-for-bit behaviour for
// audits and regression baselines. Composes with WithEstimatorOptions
// regardless of option order.
func WithExactSearch() TrainerOption {
	return func(c *trainerConfig) { c.exact = true }
}

// WithFloatKernel pins the float64 correlation kernel instead of the
// default quantized int16 kernel (core/quant.go). The quantized kernel
// is equivalence-gated — not bit-identical — against float64: it selects
// the same sector on ≥99% of seeded trials and lands within one
// coarse-cell diagonal on the rest, at a fraction of the cost. Pin the
// float kernel when reproducing artifacts recorded before the quantized
// default, or when auditing against the serial reference (WithExactSearch
// implies it). Composes with WithEstimatorOptions regardless of order.
func WithFloatKernel() TrainerOption {
	return func(c *trainerConfig) { c.float = true }
}

// NewTrainer builds a trainer over link using the transmitter's measured
// pattern set, configured by functional options:
//
//	trainer, err := talon.NewTrainer(link, patterns,
//		talon.WithM(14), talon.WithSeed(42))
//
// Defaults: M = DefaultM, seed 1, zero EstimatorOptions.
func NewTrainer(link *Link, patterns *PatternSet, opts ...TrainerOption) (*Trainer, error) {
	cfg := trainerConfig{m: DefaultM, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.exact {
		cfg.estOpts.ExactSearch = true
	}
	if cfg.float {
		cfg.estOpts.Kernel = core.KernelFloat64
	}
	if link == nil {
		return nil, fmt.Errorf("talon: trainer needs a link")
	}
	if cfg.m < 2 || cfg.m > len(sector.TalonTX()) {
		return nil, fmt.Errorf("talon: %w: probe count %d out of range [2, 34]", ErrTooFewProbes, cfg.m)
	}
	est, err := core.NewEstimator(patterns, cfg.estOpts)
	if err != nil {
		return nil, err
	}
	return &Trainer{link: link, est: est, m: cfg.m, rng: stats.NewRNG(cfg.seed)}, nil
}

// M returns the probe budget per round.
func (t *Trainer) M() int { return t.m }

// SetM changes the probe budget (e.g. under an adaptive controller).
func (t *Trainer) SetM(m int) error {
	if m < 2 || m > len(sector.TalonTX()) {
		return fmt.Errorf("talon: %w: probe count %d out of range [2, 34]", ErrTooFewProbes, m)
	}
	t.m = m
	return nil
}

// Estimator exposes the underlying CSS estimator.
func (t *Trainer) Estimator() *Estimator { return t.est }

// Train selects tx's transmit sector toward rx: it sweeps a random
// M-sector subset from tx, reads rx's measurement dump, runs compressive
// selection, and (when rx is jailbroken) arms rx's feedback override with
// the choice so subsequent sweeps feed it back. The context is observed
// between the stages and inside the correlation grid search; a cancelled
// training returns ctx.Err().
//
// Train is a thin wrapper over Run with no options.
func (t *Trainer) Train(ctx context.Context, tx, rx *Device) (*TrainResult, error) {
	res, err := t.Run(ctx, tx, rx)
	if err != nil {
		return nil, err
	}
	return &res.TrainResult, nil
}

// TrainMutual runs the full protocol exchange: both sides sweep the same
// probing subset inside one sector-level sweep, with the compressive
// choice injected into the feedback fields through the firmware override.
// The context is observed between the stages.
//
// TrainMutual is a thin wrapper over Run with the Mutual option.
func (t *Trainer) TrainMutual(ctx context.Context, initiator, responder *Device) (*TrainResult, error) {
	res, err := t.Run(ctx, initiator, responder, Mutual())
	if err != nil {
		return nil, err
	}
	return &res.TrainResult, nil
}

// TalonTXSectors lists the 34 predefined transmit sectors.
func TalonTXSectors() []SectorID { return sector.TalonTX() }

// MutualTrainingTime returns the airtime of a mutual training with m
// probes per side (Figure 10's model).
func MutualTrainingTime(m int) float64 {
	return dot11ad.MutualTrainingTime(m).Seconds()
}

// BackupSelection pairs a primary compressive selection with a backup
// sector toward a secondary propagation path.
type BackupSelection = core.BackupSelection

// DefaultBackupSeparationDeg is the minimum angular separation (degrees)
// between primary and backup paths that TrainWithBackup requires — wide
// enough that the backup survives a blockage of the primary.
const DefaultBackupSeparationDeg = 18

// TrainWithBackup selects tx's transmit sector toward rx and, when the
// correlation surface exposes a distinct secondary path (e.g. a wall
// reflection), also returns a backup sector: if the primary path gets
// blocked, switching to the backup keeps the link alive without a new
// training round. The context is observed between the stages and inside
// the correlation searches.
//
// TrainWithBackup is a thin wrapper over Run with
// WithBackup(DefaultBackupSeparationDeg).
func (t *Trainer) TrainWithBackup(ctx context.Context, tx, rx *Device) (*TrainResult, BackupSelection, error) {
	res, err := t.Run(ctx, tx, rx, WithBackup(DefaultBackupSeparationDeg))
	if err != nil {
		return nil, BackupSelection{}, err
	}
	return &res.TrainResult, *res.Backup, nil
}
