package talon_test

import (
	"math"
	"testing"

	"talon"
)

func buildPair(t testing.TB) (*talon.Device, *talon.Device) {
	t.Helper()
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "dut", Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := talon.NewDevice(talon.DeviceConfig{Name: "peer", Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := peer.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	return dut, peer
}

func coarsePatternGrid(t testing.TB) *talon.Grid {
	t.Helper()
	g, err := talon.NewGrid(-80, 80, 4, 0, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstartFlow(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if patterns.Len() != 35 {
		t.Fatalf("patterns = %d", patterns.Len())
	}

	link := talon.NewLink(talon.ConferenceRoom(), dut, peer)
	dutPose := talon.Pose{}
	dutPose.Pos.Z = 1.2
	peerPose := talon.Pose{Yaw: 180}
	peerPose.Pos.X = 6
	peerPose.Pos.Z = 1.2
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)

	trainer, err := talon.NewTrainer(link, patterns, 14, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.Train(dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probed) != 14 {
		t.Fatalf("probed %d sectors", len(res.Probed))
	}
	// The choice must be a valid predefined TX sector with a usable link.
	valid := false
	for _, id := range talon.TalonTXSectors() {
		if id == res.Sector {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("selected invalid sector %v", res.Sector)
	}
	if snr := link.TrueSNR(dut, peer, res.Sector); snr < -2 {
		t.Fatalf("selected sector %v has true SNR %v", res.Sector, snr)
	}
	// The receiver-side override is armed with the selection.
	fbSector, ok := peer.Firmware().FeedbackSector()
	if !ok || fbSector != res.Sector {
		t.Fatalf("feedback override = %v, %v", fbSector, ok)
	}
}

func TestTrainMutual(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.AnechoicChamber(), dut, peer)
	dutPose, peerPose := talon.Pose{}, talon.Pose{Yaw: 180}
	dutPose.Pos.Z, peerPose.Pos.Z = 1.2, 1.2
	peerPose.Pos.X = 3
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)

	trainer, err := talon.NewTrainer(link, patterns, 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.TrainMutual(dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLS == nil {
		t.Fatal("no SLS result")
	}
	if res.SLS.FramesSent != 28 {
		t.Fatalf("SLS frames = %d, want 2×14", res.SLS.FramesSent)
	}
	// The compressive choice travels inside the protocol feedback.
	if res.SLS.InitiatorTXOK && res.SLS.InitiatorTX != res.Sector {
		t.Fatalf("feedback carried %v, selection was %v", res.SLS.InitiatorTX, res.Sector)
	}
}

func TestTrainerValidation(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(dut, peer, coarsePatternGrid(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.AnechoicChamber(), dut, peer)
	if _, err := talon.NewTrainer(nil, patterns, 14, 1); err == nil {
		t.Error("nil link accepted")
	}
	if _, err := talon.NewTrainer(link, patterns, 1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := talon.NewTrainer(link, patterns, 99, 1); err == nil {
		t.Error("m=99 accepted")
	}
	tr, err := talon.NewTrainer(link, patterns, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetM(1); err == nil {
		t.Error("SetM(1) accepted")
	}
	if err := tr.SetM(20); err != nil || tr.M() != 20 {
		t.Errorf("SetM(20): %v, M=%d", err, tr.M())
	}
}

func TestMutualTrainingTimeFacade(t *testing.T) {
	full := talon.MutualTrainingTime(34)
	css := talon.MutualTrainingTime(14)
	if math.Abs(full-0.0012731) > 1e-9 {
		t.Fatalf("full = %v s", full)
	}
	if sp := full / css; sp < 2.25 || sp > 2.35 {
		t.Fatalf("speedup = %v", sp)
	}
}

func TestEnvironmentsDistinct(t *testing.T) {
	if talon.AnechoicChamber().Name == talon.Lab().Name {
		t.Fatal("environment names collide")
	}
	if len(talon.ConferenceRoom().Reflectors) <= len(talon.AnechoicChamber().Reflectors) {
		t.Fatal("conference room has no reflectors")
	}
}

func TestTrainWithBackup(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.ConferenceRoom(), dut, peer)
	dutPose, peerPose := talon.Pose{}, talon.Pose{Yaw: 180}
	dutPose.Pos.Z, peerPose.Pos.Z = 1.2, 1.2
	peerPose.Pos.X = 6
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)
	trainer, err := talon.NewTrainer(link, patterns, 24, 19)
	if err != nil {
		t.Fatal(err)
	}
	res, backup, err := trainer.TrainWithBackup(dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sector != backup.Primary.Sector {
		t.Fatal("result and primary disagree")
	}
	if backup.HasBackup && backup.Backup.Sector == backup.Primary.Sector {
		t.Fatal("backup equals primary")
	}
}
