package talon_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"talon"
)

func buildPair(t testing.TB) (*talon.Device, *talon.Device) {
	t.Helper()
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "dut", Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := talon.NewDevice(talon.DeviceConfig{Name: "peer", Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := dut.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	if err := peer.Jailbreak(); err != nil {
		t.Fatal(err)
	}
	return dut, peer
}

func coarsePatternGrid(t testing.TB) *talon.Grid {
	t.Helper()
	g, err := talon.NewGrid(-80, 80, 4, 0, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstartFlow(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if patterns.Len() != 35 {
		t.Fatalf("patterns = %d", patterns.Len())
	}

	link := talon.NewLink(talon.ConferenceRoom(), dut, peer)
	dutPose := talon.Pose{}
	dutPose.Pos.Z = 1.2
	peerPose := talon.Pose{Yaw: 180}
	peerPose.Pos.X = 6
	peerPose.Pos.Z = 1.2
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.Train(context.Background(), dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probed) != 14 {
		t.Fatalf("probed %d sectors", len(res.Probed))
	}
	// The choice must be a valid predefined TX sector with a usable link.
	valid := false
	for _, id := range talon.TalonTXSectors() {
		if id == res.Sector {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("selected invalid sector %v", res.Sector)
	}
	if snr := link.TrueSNR(dut, peer, res.Sector); snr < -2 {
		t.Fatalf("selected sector %v has true SNR %v", res.Sector, snr)
	}
	// The receiver-side override is armed with the selection.
	fbSector, ok := peer.Firmware().FeedbackSector()
	if !ok || fbSector != res.Sector {
		t.Fatalf("feedback override = %v, %v", fbSector, ok)
	}
}

func TestTrainMutual(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.AnechoicChamber(), dut, peer)
	dutPose, peerPose := talon.Pose{}, talon.Pose{Yaw: 180}
	dutPose.Pos.Z, peerPose.Pos.Z = 1.2, 1.2
	peerPose.Pos.X = 3
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.TrainMutual(context.Background(), dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLS == nil {
		t.Fatal("no SLS result")
	}
	if res.SLS.FramesSent != 28 {
		t.Fatalf("SLS frames = %d, want 2×14", res.SLS.FramesSent)
	}
	// The compressive choice travels inside the protocol feedback.
	if res.SLS.InitiatorTXOK && res.SLS.InitiatorTX != res.Sector {
		t.Fatalf("feedback carried %v, selection was %v", res.SLS.InitiatorTX, res.Sector)
	}
}

func TestTrainerValidation(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.AnechoicChamber(), dut, peer)
	if _, err := talon.NewTrainer(nil, patterns, talon.WithM(14)); err == nil {
		t.Error("nil link accepted")
	}
	if _, err := talon.NewTrainer(link, patterns, talon.WithM(1)); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := talon.NewTrainer(link, patterns, talon.WithM(99)); err == nil {
		t.Error("m=99 accepted")
	}
	tr, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetM(1); err == nil {
		t.Error("SetM(1) accepted")
	}
	if err := tr.SetM(20); err != nil || tr.M() != 20 {
		t.Errorf("SetM(20): %v, M=%d", err, tr.M())
	}
}

func TestMutualTrainingTimeFacade(t *testing.T) {
	full := talon.MutualTrainingTime(34)
	css := talon.MutualTrainingTime(14)
	if math.Abs(full-0.0012731) > 1e-9 {
		t.Fatalf("full = %v s", full)
	}
	if sp := full / css; sp < 2.25 || sp > 2.35 {
		t.Fatalf("speedup = %v", sp)
	}
}

func TestEnvironmentsDistinct(t *testing.T) {
	if talon.AnechoicChamber().Name == talon.Lab().Name {
		t.Fatal("environment names collide")
	}
	if len(talon.ConferenceRoom().Reflectors) <= len(talon.AnechoicChamber().Reflectors) {
		t.Fatal("conference room has no reflectors")
	}
}

func TestTrainWithBackup(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.ConferenceRoom(), dut, peer)
	dutPose, peerPose := talon.Pose{}, talon.Pose{Yaw: 180}
	dutPose.Pos.Z, peerPose.Pos.Z = 1.2, 1.2
	peerPose.Pos.X = 6
	dut.SetPose(dutPose)
	peer.SetPose(peerPose)
	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(24), talon.WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	res, backup, err := trainer.TrainWithBackup(context.Background(), dut, peer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sector != backup.Primary.Sector {
		t.Fatal("result and primary disagree")
	}
	if backup.HasBackup && backup.Backup.Sector == backup.Primary.Sector {
		t.Fatal("backup equals primary")
	}
}

func TestMeasurePatternsCancellation(t *testing.T) {
	dut, peer := buildPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := talon.MeasurePatterns(ctx, dut, peer, coarsePatternGrid(t), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTrainCancellation(t *testing.T) {
	dut, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dut, peer, coarsePatternGrid(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.Lab(), dut, peer)
	peerPose := talon.Pose{Yaw: 180}
	peerPose.Pos.X = 3
	peer.SetPose(peerPose)
	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := trainer.Train(ctx, dut, peer); !errors.Is(err, context.Canceled) {
		t.Fatalf("Train: want context.Canceled, got %v", err)
	}
	if _, err := trainer.TrainMutual(ctx, dut, peer); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainMutual: want context.Canceled, got %v", err)
	}
	if _, _, err := trainer.TrainWithBackup(ctx, dut, peer); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainWithBackup: want context.Canceled, got %v", err)
	}
	// The same trainer still works once the pressure is off.
	if _, err := trainer.Train(context.Background(), dut, peer); err != nil {
		t.Fatalf("post-cancel Train: %v", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	dut, err := talon.NewDevice(talon.DeviceConfig{Name: "stock", Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Stock firmware: the dump must fail with the typed sentinel.
	if _, err := dut.SweepDump(); !errors.Is(err, talon.ErrNotJailbroken) {
		t.Fatalf("stock SweepDump: want ErrNotJailbroken, got %v", err)
	}
	dutB, peer := buildPair(t)
	patterns, err := talon.MeasurePatterns(context.Background(), dutB, peer, coarsePatternGrid(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	link := talon.NewLink(talon.Lab(), dutB, peer)
	if _, err := talon.NewTrainer(link, patterns, talon.WithM(1)); !errors.Is(err, talon.ErrTooFewProbes) {
		t.Fatalf("WithM(1): want ErrTooFewProbes, got %v", err)
	}
}
