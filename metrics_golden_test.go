package talon_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"talon/internal/obs"

	// Blank imports link every metric-defining package into this test
	// binary so the default registry holds the full metric inventory.
	_ "talon/internal/eval"
	_ "talon/internal/fault"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricNamesGolden pins the full metric inventory of the default
// registry. Adding a metric is fine — regenerate with -update — but a
// rename or removal breaks dashboards built on evalrunner -metrics and
// must be a conscious, visible change.
func TestMetricNamesGolden(t *testing.T) {
	names := obs.Default().Names()
	got := []byte(strings.Join(names, "\n") + "\n")

	golden := filepath.Join("testdata", "metric_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metric inventory changed (run with -update if intended):\ngot:\n%swant:\n%s", got, want)
	}

	// The fault layer and the resilient trainer must be represented.
	joined := strings.Join(names, " ")
	for _, needle := range []string{
		"fault_frame_drops_total",
		"fault_wmi_failures_total",
		"trainer_retries_total",
		"trainer_fallbacks_total",
		"trainer_snr_check_failures_total",
		"eval_fault_trials_total",
	} {
		if !strings.Contains(joined, needle) {
			t.Errorf("metric %q missing from the registry", needle)
		}
	}
}
