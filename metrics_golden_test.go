package talon_test

import (
	"path/filepath"
	"strings"
	"testing"

	"talon/internal/obs"
	"talon/internal/testutil"

	// Blank imports link every metric-defining package into this test
	// binary so the default registry holds the full metric inventory.
	_ "talon/internal/eval"
	_ "talon/internal/fault"
	_ "talon/internal/fleet"
	_ "talon/internal/tracestore"
)

// TestMetricNamesGolden pins the full metric inventory of the default
// registry. Adding a metric is fine — regenerate with -update — but a
// rename or removal breaks dashboards built on evalrunner -metrics and
// must be a conscious, visible change.
func TestMetricNamesGolden(t *testing.T) {
	names := obs.Default().Names()
	got := []byte(strings.Join(names, "\n") + "\n")

	testutil.Golden(t, filepath.Join("testdata", "metric_names.golden"), got)

	// The fault layer and the resilient trainer must be represented.
	joined := strings.Join(names, " ")
	for _, needle := range []string{
		"fault_frame_drops_total",
		"fault_wmi_failures_total",
		"trainer_retries_total",
		"trainer_fallbacks_total",
		"trainer_snr_check_failures_total",
		"eval_fault_trials_total",
		"fleet_stations",
		"fleet_trainings_total",
		"fleet_batch_items_total",
	} {
		if !strings.Contains(joined, needle) {
			t.Errorf("metric %q missing from the registry", needle)
		}
	}
}
