// Command fleetsim replays a seeded fleet workload — arrivals, churn,
// mobility, blockage and fault bursts over 10k to 1M stations — against
// the internal/fleet alignment service and reports a deterministic
// scorecard: p50/p99 virtual selection latency, retrains per second and
// the SNR-loss distributions of selection and tracking.
//
// Usage:
//
//	fleetsim [-stations N] [-epochs N] [-seed N] [-o scorecard.json]
//	fleetsim -record-events DIR [flags...]
//	fleetsim -replay-events DIR [flags...]
//
// The scorecard is a pure function of the flags: a fixed seed yields a
// byte-identical JSON file across runs, machines and -workers settings
// (-verify proves it by running twice). Wall-clock throughput is
// deliberately kept out of the scorecard and reported separately with
// -bench in `go test -bench` format, so `benchdiff -record` can track
// it; the scorecard itself doubles as a benchdiff baseline of virtual
// metrics via its embedded "benchmarks" array.
//
// Event persistence: -record-events streams the whole generated
// workload (preseed arrivals included) into columnar trace-store shards
// under the given directory while running normally; -replay-events
// drives a fresh fleet from such a recording instead of the live
// generator — the scorecard is byte-identical to the recording run's.
//
// Observability: -metrics dumps the metrics registry as JSON on exit
// ("-" = stdout), -debug serves /metrics and /debug/pprof while the
// simulation runs, -cpuprofile writes a pprof CPU profile.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"talon/internal/eval"
	"talon/internal/fleet"
	"talon/internal/obs"
)

var (
	stations = flag.Int("stations", 10000, "target fleet size")
	epochs   = flag.Int("epochs", 50, "virtual horizon in epochs")
	epoch    = flag.Duration("epoch", 100*time.Millisecond, "virtual epoch length")
	seed     = flag.Int64("seed", 1, "workload and probing seed")
	m        = flag.Int("m", 14, "compressive probe budget per training round")
	shards   = flag.Int("shards", 0, "shard count (0 = default 256, rounded to a power of two)")
	capacity = flag.Int("capacity", 0, "max trainings served per epoch (0 = unlimited)")
	workers  = flag.Int("workers", 0, "scan/batch worker count (0 = GOMAXPROCS); scorecard is identical at any setting")
	churn    = flag.Float64("churn", 0.002, "fraction of the fleet churned per epoch")
	mobility = flag.Float64("mobility", 0.01, "fraction of the fleet changing drift per epoch")
	blockage = flag.Float64("blockage", 0.002, "fraction of the fleet blocked per epoch")
	fault    = flag.Float64("fault", 0.002, "fraction of the fleet hit by probe-loss bursts per epoch")
	warm     = flag.Bool("warm", true, "warm-start re-estimation: hint each training with the station's previous grid cell (-warm=false runs every round cold)")
	fidelity = flag.String("fidelity", "quick", "pattern-campaign fidelity: quick or full")
	out      = flag.String("o", "-", "scorecard JSON destination (\"-\" = stdout)")
	bench    = flag.Bool("bench", false, "print wall-clock throughput in `go test -bench` format on stderr-independent stdout for benchdiff -record")
	verify   = flag.Bool("verify", false, "run the simulation twice and fail unless the scorecards are byte-identical")

	recordEvents = flag.String("record-events", "", "also persist the generated event stream into trace-store shards under this directory")
	replayEvents = flag.String("replay-events", "", "replay a recorded event stream from this directory instead of generating the workload")

	metricsOut = flag.String("metrics", "", "dump the metrics registry as JSON to this file on exit (\"-\" = stdout)")
	debugAddr  = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
)

func main() {
	flag.Parse()
	cleanup, err := obs.HookCLI(*metricsOut, *debugAddr, *cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err = run(ctx)
	if cerr := cleanup(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "fleetsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var f eval.Fidelity
	switch *fidelity {
	case "quick":
		f = eval.Quick()
	case "full":
		f = eval.Full()
	default:
		return fmt.Errorf("unknown fidelity %q", *fidelity)
	}
	cfg := fleet.SimConfig{
		Stations:         *stations,
		Epochs:           *epochs,
		EpochNs:          int64(*epoch),
		Seed:             *seed,
		M:                *m,
		Shards:           *shards,
		Capacity:         *capacity,
		Workers:          *workers,
		ColdStart:        !*warm,
		ChurnPerEpoch:    *churn,
		MobilityPerEpoch: *mobility,
		BlockagePerEpoch: *blockage,
		FaultPerEpoch:    *fault,
	}

	fmt.Fprintf(os.Stderr, "fleetsim: measuring patterns (%s fidelity)...\n", *fidelity)
	p, err := eval.NewPlatform(ctx, *seed, f.PatternGrid, f.CampaignRepeats)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "fleetsim: replaying %d stations x %d epochs (seed %d)...\n",
		cfg.Stations, cfg.Epochs, cfg.Seed)
	start := time.Now()
	sc, err := runFleet(ctx, p, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	blob, err := encode(sc)
	if err != nil {
		return err
	}

	if *verify {
		fmt.Fprintln(os.Stderr, "fleetsim: verify pass (second run)...")
		sc2, err := runFleet(ctx, p, cfg)
		if err != nil {
			return err
		}
		blob2, err := encode(sc2)
		if err != nil {
			return err
		}
		if !bytes.Equal(blob, blob2) {
			return errors.New("verify: scorecards differ between identical runs")
		}
		fmt.Fprintln(os.Stderr, "fleetsim: verify OK — scorecards byte-identical")
	}

	if err := emit(*out, blob); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"fleetsim: %d trainings (%d retrains, %d failures) in %v wall; latency p50 %v p99 %v; selection loss p50 %.2f dB\n",
		sc.Trainings, sc.Retrains, sc.Failures, wall.Round(time.Millisecond),
		time.Duration(sc.SelectLatency.P50Ns), time.Duration(sc.SelectLatency.P99Ns),
		float64(sc.SelectionLoss.P50Milli)/1000)

	if *bench {
		printBench(sc, wall, cfg)
	}
	return nil
}

// runFleet dispatches between the live generator, the recording run and
// the event-stream replay.
func runFleet(ctx context.Context, p *eval.Platform, cfg fleet.SimConfig) (*fleet.Scorecard, error) {
	switch {
	case *replayEvents != "":
		return fleet.ReplaySim(ctx, p.Estimator, p.Patterns, cfg, *replayEvents, eventBase)
	case *recordEvents != "":
		sc, shards, err := fleet.RunSimRecorded(ctx, p.Estimator, p.Patterns, cfg, *recordEvents, eventBase)
		if err != nil {
			return nil, err
		}
		var events uint64
		for _, sh := range shards {
			events += sh.Header.Records
		}
		fmt.Fprintf(os.Stderr, "fleetsim: recorded %d events into %d shards under %s\n",
			events, len(shards), *recordEvents)
		return sc, nil
	default:
		return fleet.RunSim(ctx, p.Estimator, p.Patterns, cfg)
	}
}

// eventBase is the shard basename of -record-events/-replay-events.
const eventBase = "fleet-events"

func encode(sc *fleet.Scorecard) ([]byte, error) {
	blob, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

func emit(dst string, blob []byte) error {
	if dst == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(dst, blob, 0o644)
}

// printBench reports wall-clock throughput in `go test -bench` text
// format so `benchdiff -record` can capture it into a baseline.
func printBench(sc *fleet.Scorecard, wall time.Duration, cfg fleet.SimConfig) {
	procs := runtime.GOMAXPROCS(0)
	// Cold-start runs report under distinct names so one bench file can
	// carry both modes and benchdiff -speedup can gate warm vs cold.
	suffix := ""
	if cfg.ColdStart {
		suffix = "_cold"
	}
	if sc.Epochs > 0 {
		fmt.Printf("BenchmarkFleetsimWall/stations=%d/step%s-%d %d %.1f ns/op\n",
			cfg.Stations, suffix, procs, sc.Epochs, float64(wall.Nanoseconds())/float64(sc.Epochs))
	}
	if sc.Trainings > 0 {
		fmt.Printf("BenchmarkFleetsimWall/stations=%d/training%s-%d %d %.1f ns/op\n",
			cfg.Stations, suffix, procs, sc.Trainings, float64(wall.Nanoseconds())/float64(sc.Trainings))
	}
}
