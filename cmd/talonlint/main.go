// Command talonlint runs talon's project-specific static-analysis suite
// over the module:
//
//	go run ./cmd/talonlint ./...
//
// Four analyzers enforce the invariants the reproduction's claims rest
// on (see internal/analysis):
//
//	determinism  no time.Now/time.Since or global math/rand in library code
//	ctxfirst     context-first APIs, no conjured root contexts
//	metricname   snake_case, prefixed, golden-pinned obs metric names
//	senterr      sentinel errors matched with errors.Is, wrapped with %w
//
// determinism and ctxfirst are scoped to the deterministic library
// packages (internal/{core,eval,fault,wil,channel,stats,testbed,
// session,fleet}); metricname and senterr apply module-wide. cmd/
// binaries own their roots and wall clocks by design. Findings are
// suppressed line-by-line with `//lint:allow <analyzer> -- <reason>`.
//
// Exit status is 1 when any finding survives, so CI can require it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"talon/internal/analysis"
)

// scopedRe matches the import paths of the deterministic library
// packages that determinism and ctxfirst bind.
var scopedRe = regexp.MustCompile(`/internal/(core|eval|fault|wil|channel|stats|testbed|session|fleet|tracestore)(/|$)`)

func main() {
	golden := flag.String("golden", "", "metric inventory file (default <module>/testdata/metric_names.golden)")
	dir := flag.String("C", "", "run as if started in this directory")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: talonlint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(*dir, *golden, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "talonlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "talonlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func run(dir, golden string, patterns []string) (int, error) {
	if golden == "" {
		root, err := moduleRoot(dir)
		if err != nil {
			return 0, err
		}
		golden = filepath.Join(root, "testdata", "metric_names.golden")
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}

	wide := []*analysis.Analyzer{analysis.NewMetricName(golden), analysis.SentErr}
	scoped := []*analysis.Analyzer{analysis.Determinism, analysis.CtxFirst}

	findings := 0
	for _, pkg := range pkgs {
		as := wide
		if scopedRe.MatchString("/" + pkg.ImportPath) {
			as = append(append([]*analysis.Analyzer(nil), scoped...), wide...)
		}
		for _, d := range analysis.RunAnalyzers(pkg, as...) {
			fmt.Println(d)
			findings++
		}
	}
	return findings, nil
}

// moduleRoot walks up from dir (or the working directory) to go.mod.
func moduleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
