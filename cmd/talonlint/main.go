// Command talonlint runs talon's project-specific static-analysis suite
// over the module:
//
//	go run ./cmd/talonlint ./...
//
// Eight analyzers enforce the invariants the reproduction's claims rest
// on (see internal/analysis):
//
//	determinism     no time.Now/time.Since or global math/rand in library code
//	ctxfirst        context-first APIs, no conjured root contexts
//	metricname      snake_case, prefixed, golden-pinned obs metric names
//	senterr         sentinel errors matched with errors.Is, wrapped with %w
//	lockdiscipline  every mutex acquire pairs with a release; no double-lock
//	atomicmix       no plain access to fields touched through sync/atomic
//	goroutinescope  goroutines joined (WaitGroup/channel) or ctx-scoped
//	noalloc         //talon:noalloc functions avoid allocating constructs
//
// determinism and ctxfirst are scoped to the deterministic library
// packages (internal/{core,eval,fault,wil,channel,stats,testbed,
// session,fleet,tracestore}); lockdiscipline and atomicmix extend that
// scope with internal/obs (where the mutexes live); goroutinescope
// binds the packages that promise structured concurrency
// (internal/{core,eval,fleet,session,tracestore,obs}); metricname,
// senterr and noalloc apply module-wide. cmd/ binaries own their roots,
// wall clocks and goroutines by design. Findings are suppressed
// line-by-line with `//lint:allow <analyzer> -- <reason>`; an allow
// that suppresses nothing is itself reported as stale.
//
// -json emits every diagnostic — suppressed ones included, flagged — as
// a JSON array on stdout for machine consumption (the CI artifact).
//
// Exit status is 1 when any unsuppressed finding survives, so CI can
// require it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"talon/internal/analysis"
)

// libScopeRe matches the import paths of the deterministic library
// packages that determinism and ctxfirst bind.
var libScopeRe = regexp.MustCompile(`/internal/(core|eval|fault|wil|channel|stats|testbed|session|fleet|tracestore)(/|$)`)

// concScopeRe adds internal/obs to the library scope for the mutex- and
// atomic-convention analyzers: obs is excused from determinism (it
// wraps the wall clock) but its locks follow the same discipline.
var concScopeRe = regexp.MustCompile(`/internal/(core|eval|fault|wil|channel|stats|testbed|session|fleet|tracestore|obs)(/|$)`)

// goScopeRe matches the packages that promise structured concurrency:
// every goroutine they launch is joined or cancellation-scoped.
var goScopeRe = regexp.MustCompile(`/internal/(core|eval|fleet|session|tracestore|obs)(/|$)`)

func main() {
	golden := flag.String("golden", "", "metric inventory file (default <module>/testdata/metric_names.golden)")
	dir := flag.String("C", "", "run as if started in this directory")
	jsonOut := flag.Bool("json", false, "emit all diagnostics (suppressed included) as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: talonlint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(*dir, *golden, *jsonOut, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "talonlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "talonlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable shape of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// run lints the matched packages and returns the number of unsuppressed
// findings.
func run(dir, golden string, jsonOut bool, patterns []string) (int, error) {
	if golden == "" {
		root, err := moduleRoot(dir)
		if err != nil {
			return 0, err
		}
		golden = filepath.Join(root, "testdata", "metric_names.golden")
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}

	wide := []*analysis.Analyzer{analysis.NewMetricName(golden), analysis.SentErr, analysis.NoAlloc}

	findings := 0
	all := []jsonDiag{} // marshals to [] rather than null when empty
	for _, pkg := range pkgs {
		as := append([]*analysis.Analyzer(nil), wide...)
		path := "/" + pkg.ImportPath
		if libScopeRe.MatchString(path) {
			as = append(as, analysis.Determinism, analysis.CtxFirst)
		}
		if concScopeRe.MatchString(path) {
			as = append(as, analysis.LockDiscipline, analysis.AtomicMix)
		}
		if goScopeRe.MatchString(path) {
			as = append(as, analysis.GoroutineScope)
		}
		for _, d := range analysis.RunAnalyzersAll(pkg, as...) {
			if jsonOut {
				all = append(all, jsonDiag{
					File:       d.Pos.Filename,
					Line:       d.Pos.Line,
					Col:        d.Pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
			}
			if d.Suppressed {
				continue
			}
			if !jsonOut {
				fmt.Println(d)
			}
			findings++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return 0, err
		}
	}
	return findings, nil
}

// moduleRoot walks up from dir (or the working directory) to go.mod.
func moduleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
