package main

import (
	"context"
	"fmt"

	"talon"
)

// cmdTrain runs one compressive training round on the public API: a
// quick chamber pattern campaign, then Trainer.Run with the full
// protocol exchange in the selected environment.
func cmdTrain() error {
	ctx := context.Background()
	link, a, b, err := buildPair()
	if err != nil {
		return err
	}
	for _, d := range []*talon.Device{a, b} {
		if err := d.Jailbreak(); err != nil {
			return err
		}
	}

	// A coarse grid keeps the one-off campaign interactive; accuracy
	// studies use patternscan/evalrunner at full resolution.
	grid, err := talon.NewGrid(-90, 90, 6, 0, 32, 8)
	if err != nil {
		return err
	}
	fmt.Printf("measuring patterns on a %d-point grid...\n", grid.Size())
	patterns, err := talon.MeasurePatterns(ctx, a, b, grid, 1)
	if err != nil {
		return err
	}

	// The campaign repositioned the pair; restore the -env deployment.
	poseA := talon.Pose{}
	poseA.Pos.Z = 1.2
	poseB := talon.Pose{Yaw: 180}
	poseB.Pos.X = *dist
	poseB.Pos.Z = 1.2
	a.SetPose(poseA)
	b.SetPose(poseB)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(*mFlag), talon.WithSeed(*seed))
	if err != nil {
		return err
	}
	res, err := trainer.Run(ctx, a, b, talon.Mutual())
	if err != nil {
		return err
	}
	fmt.Printf("compressive training in %s at %.1f m (M = %d):\n", link.Env.Name, *dist, *mFlag)
	fmt.Printf("  probed sectors: %v\n", res.Probed)
	fmt.Printf("  selection: %v\n", res.Selection)
	fmt.Printf("  true SNR on sector %v: %.1f dB\n", res.Sector, link.TrueSNR(a, b, res.Sector))
	if sls := res.SLS; sls != nil {
		fmt.Printf("  SLS: %d/%d frames delivered, feedback=%v ack=%v, airtime %v\n",
			sls.FramesDelivered, sls.FramesSent, sls.FeedbackDelivered, sls.AckDelivered, sls.Duration)
	}
	return nil
}
