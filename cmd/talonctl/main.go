// Command talonctl drives a pair of simulated Talon AD7200 routers: it
// inspects the sector inventory, jailbreaks the firmware, runs sector
// sweeps, reads the measurement ring buffer and forces feedback sectors —
// the workflows Section 3 of the paper enables on the real hardware.
//
// Usage:
//
//	talonctl [flags] <command>
//
// Commands:
//
//	info       show device, codebook and schedule information
//	jailbreak  apply the firmware patches and show the memory map effects
//	sweep      run a mutual sector-level sweep and report the outcome
//	dump       run a sweep and print the measurement ring buffer
//	force      arm the feedback override (use -sector) and verify it
//	train      run one compressive training round (use -m for the budget)
//
// Observability: -metrics dumps the metrics registry as JSON on exit
// ("-" = stdout), -debug serves /metrics and /debug/pprof, -cpuprofile
// writes a pprof CPU profile.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/nexmon"
	"talon/internal/obs"
	"talon/internal/sector"
	"talon/internal/wil"
)

var (
	seed    = flag.Int64("seed", 1, "device seed (reproduces the same hardware unit)")
	envName = flag.String("env", "chamber", "environment: chamber, lab or conference")
	dist    = flag.Float64("dist", 3, "device separation in meters")
	secFlag = flag.Int("sector", 12, "sector ID for the force command")
	mFlag   = flag.Int("m", 14, "probe budget for the train command")

	metricsOut = flag.String("metrics", "", "dump the metrics registry as JSON to this file on exit (\"-\" = stdout)")
	debugAddr  = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: talonctl [flags] info|jailbreak|sweep|dump|force|train\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	// Accept flags after the command too (talonctl force -sector 24).
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}
	cleanup, err := obs.HookCLI(*metricsOut, *debugAddr, *cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "talonctl:", err)
		os.Exit(1)
	}
	err = run(cmd)
	if cerr := cleanup(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "talonctl:", err)
		os.Exit(1)
	}
}

func environment() (*channel.Environment, error) {
	switch *envName {
	case "chamber":
		return channel.AnechoicChamber(), nil
	case "lab":
		return channel.Lab(), nil
	case "conference":
		return channel.ConferenceRoom(), nil
	}
	return nil, fmt.Errorf("unknown environment %q", *envName)
}

func buildPair() (*wil.Link, *wil.Device, *wil.Device, error) {
	env, err := environment()
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := wil.NewDevice(wil.Config{
		Name: "talon-a",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x01},
		Seed: *seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	b, err := wil.NewDevice(wil.Config{
		Name: "talon-b",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x02},
		Seed: *seed + 1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	poseA := channel.Pose{}
	poseA.Pos.Z = 1.2
	poseB := channel.Pose{Yaw: 180}
	poseB.Pos.X = *dist
	poseB.Pos.Z = 1.2
	a.SetPose(poseA)
	b.SetPose(poseB)
	return wil.NewLink(env, a, b), a, b, nil
}

func run(cmd string) error {
	switch cmd {
	case "info":
		return cmdInfo()
	case "jailbreak":
		return cmdJailbreak()
	case "sweep":
		return cmdSweep()
	case "dump":
		return cmdDump()
	case "force":
		return cmdForce()
	case "train":
		return cmdTrain()
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func cmdInfo() error {
	_, a, _, err := buildPair()
	if err != nil {
		return err
	}
	fmt.Printf("device %s (%s), %d antenna elements, %d-state phase shifters\n",
		a.Name(), a.MAC(), a.Array().NumElements(), a.Array().PhaseStates())
	fmt.Printf("codebook: %d sectors (%d TX + quasi-omni RX)\n", a.Codebook().Len(), len(sector.TalonTX()))
	fmt.Printf("beacon interval %v, sweep at least every %v\n", dot11ad.BeaconInterval, dot11ad.SweepInterval)
	fmt.Printf("mutual training: full sweep %v, 14-probe compressive %v (%.2fx)\n",
		dot11ad.MutualTrainingTime(34), dot11ad.MutualTrainingTime(14), dot11ad.TrainingSpeedup(14, 34))
	fmt.Println("\nstock sweep burst (sector @ CDOWN):")
	for _, s := range dot11ad.SweepSchedule() {
		if s.Used {
			fmt.Printf("  %2v @ %2d\n", s.Sector, s.CDOWN)
		}
	}
	return nil
}

func cmdJailbreak() error {
	_, a, _, err := buildPair()
	if err != nil {
		return err
	}
	fw := a.Firmware()
	fmt.Println("stock firmware:")
	fmt.Printf("  sweep dump readable: %v\n", fw.SweepDumpEnabled())
	fmt.Printf("  sector override:     %v\n", fw.OverrideEnabled())

	// Demonstrate the write-protection trick of Figure 1.
	low := uint32(nexmon.UcodeCodeBase + 0x16000)
	if err := fw.Memory().Write(low, []byte{0x90}); err != nil {
		fmt.Printf("  write to ucode code at %#08x: %v\n", low, err)
	}
	alias, err := fw.Memory().AliasOf(low)
	if err != nil {
		return err
	}
	fmt.Printf("  writable alias of %#08x is %#08x\n", low, alias)

	if err := a.Jailbreak(); err != nil {
		return err
	}
	fmt.Println("after applying the Nexmon-style patches:")
	for _, p := range fw.Framework().Patches() {
		fmt.Printf("  %-16s @ %#08x (%s)\n", p.Name, p.Addr, p.Description)
	}
	fmt.Printf("  sweep dump readable: %v\n", fw.SweepDumpEnabled())
	fmt.Printf("  sector override:     %v\n", fw.OverrideEnabled())
	return nil
}

func cmdSweep() error {
	link, a, b, err := buildPair()
	if err != nil {
		return err
	}
	slots := dot11ad.SweepSchedule()
	res, err := link.RunSLS(a, b, slots, slots)
	if err != nil {
		return err
	}
	fmt.Printf("mutual sector-level sweep in %s at %.1f m:\n", link.Env.Name, *dist)
	fmt.Printf("  frames: %d sent, %d delivered\n", res.FramesSent, res.FramesDelivered)
	fmt.Printf("  initiator TX sector: %v (ok=%v)\n", res.InitiatorTX, res.InitiatorTXOK)
	fmt.Printf("  responder TX sector: %v (ok=%v)\n", res.ResponderTX, res.ResponderTXOK)
	fmt.Printf("  feedback/ack delivered: %v/%v\n", res.FeedbackDelivered, res.AckDelivered)
	fmt.Printf("  airtime: %v\n", res.Duration)
	fmt.Println("  responder-side measurements (initiator sectors):")
	for _, id := range sector.TalonTX() {
		if m, ok := res.AtResponder[id]; ok {
			fmt.Printf("    sector %2v: SNR %6.2f dB, RSSI %5.0f dBm (true %6.2f dB)\n",
				id, m.SNR, m.RSSI, link.TrueSNR(a, b, id))
		}
	}
	return nil
}

func cmdDump() error {
	link, a, b, err := buildPair()
	if err != nil {
		return err
	}
	// On stock firmware the ring buffer is unreadable; show the typed
	// rejection before jailbreaking.
	if _, err := b.SweepDump(); errors.Is(err, wil.ErrNotJailbroken) {
		fmt.Printf("stock firmware refuses the dump (%v); jailbreaking %s\n", err, b.Name())
	}
	if err := b.Jailbreak(); err != nil {
		return err
	}
	if _, err := link.RunTXSS(a, b, dot11ad.SweepSchedule()); err != nil {
		return err
	}
	recs, err := b.SweepDump()
	if err != nil {
		return err
	}
	fmt.Printf("ring buffer of %s: %d records\n", b.Name(), len(recs))
	for _, r := range recs {
		fmt.Printf("  #%04d sector %2v cdown %2d  SNR %6.2f dB  RSSI %4.0f dBm\n",
			r.Seq, r.Sector, r.CDOWN, r.SNR, r.RSSI)
	}
	return nil
}

func cmdForce() error {
	link, a, b, err := buildPair()
	if err != nil {
		return err
	}
	id := sector.ID(*secFlag)
	if !sector.IsTalonTX(id) {
		return fmt.Errorf("sector %d is not a Talon TX sector", *secFlag)
	}
	if err := b.Jailbreak(); err != nil {
		return err
	}
	if err := b.ForceSector(id); err != nil {
		if errors.Is(err, sector.ErrUnknown) {
			return fmt.Errorf("firmware rejected sector %v: %w", id, err)
		}
		return err
	}
	slots := dot11ad.SweepSchedule()
	res, err := link.RunSLS(a, b, slots, slots)
	if err != nil {
		return err
	}
	fmt.Printf("override armed with sector %v\n", id)
	fmt.Printf("feedback received by initiator: sector %v (ok=%v)\n", res.InitiatorTX, res.InitiatorTXOK)
	if res.InitiatorTXOK && res.InitiatorTX == id {
		fmt.Println("feedback field successfully overwritten")
	}
	return nil
}
