// Command patternscan runs the Section 4 measurement campaign: a device
// under test rotates on a stepper head in an anechoic chamber while a
// fixed probe records sector-sweep frames, producing the 3D radiation
// patterns of all 35 predefined sectors.
//
// Output goes to a pattern file (CSV or the compact binary format,
// chosen by extension) plus a per-sector summary on stdout.
//
// The paper's exact resolutions:
//
//	azimuth cut (Figure 5):  -az-min=-180 -az-max=180 -az-step=0.9 -el-max=0
//	spherical  (Figure 6):   -az-min=-90  -az-max=90  -az-step=1.8 -el-max=32.4 -el-step=3.6
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/obs"
	"talon/internal/pattern"
	"talon/internal/testbed"
	"talon/internal/wil"
)

var (
	seed    = flag.Int64("seed", 1, "device seed")
	azMin   = flag.Float64("az-min", -90, "azimuth range start (degrees)")
	azMax   = flag.Float64("az-max", 90, "azimuth range end (degrees)")
	azStep  = flag.Float64("az-step", 1.8, "azimuth step (degrees)")
	elMin   = flag.Float64("el-min", 0, "elevation range start (degrees)")
	elMax   = flag.Float64("el-max", 32.4, "elevation range end (degrees)")
	elStep  = flag.Float64("el-step", 3.6, "elevation step (degrees)")
	repeats = flag.Int("repeats", 3, "sweeps averaged per grid point")
	out     = flag.String("o", "", "output file (.csv or .pat binary); omit for summary only")

	metricsOut = flag.String("metrics", "", "dump the metrics registry as JSON to this file on exit (\"-\" = stdout)")
	debugAddr  = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
)

func main() {
	flag.Parse()
	cleanup, err := obs.HookCLI(*metricsOut, *debugAddr, *cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "patternscan:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err = run(ctx)
	if cerr := cleanup(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "patternscan: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "patternscan:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	grid, err := geom.UniformGrid(*azMin, *azMax, *azStep, *elMin, *elMax, *elStep)
	if err != nil {
		return err
	}
	dut, err := wil.NewDevice(wil.Config{
		Name: "dut",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x01},
		Seed: *seed,
	})
	if err != nil {
		return err
	}
	probe, err := wil.NewDevice(wil.Config{
		Name: "probe",
		MAC:  dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x02},
		Seed: *seed + 1,
	})
	if err != nil {
		return err
	}
	if err := dut.Jailbreak(); err != nil {
		return err
	}
	if err := probe.Jailbreak(); err != nil {
		return err
	}
	link := wil.NewLink(channel.AnechoicChamber(), dut, probe)
	campaign := testbed.NewChamberCampaign(link, dut, probe, *seed+2)
	campaign.Repeats = *repeats

	fmt.Fprintf(os.Stderr, "measuring %d grid points x %d repeats x 35 sectors...\n", grid.Size(), *repeats)
	start := time.Now()
	set, err := campaign.MeasureAllPatterns(ctx, grid)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-7s %9s %9s %9s %12s\n", "sector", "peak az", "peak el", "peak SNR", "directivity")
	for _, id := range set.IDs() {
		p := set.Get(id)
		az, el, g := p.Peak()
		fmt.Printf("%-7v %8.1f° %8.1f° %6.2f dB %9.2f dB\n", id, az, el, g, p.Directivity())
	}

	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".csv") {
		err = set.WriteCSV(f)
	} else {
		err = set.WriteBinary(f)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "patterns written to %s\n", *out)
	return verifyRoundTrip(*out, set)
}

// verifyRoundTrip re-reads the written file to guarantee it loads.
func verifyRoundTrip(path string, want *pattern.Set) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var got *pattern.Set
	if strings.HasSuffix(path, ".csv") {
		got, err = pattern.ReadCSV(f)
	} else {
		got, err = pattern.ReadBinary(f)
	}
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	if got.Len() != want.Len() {
		return fmt.Errorf("verify %s: %d sectors, wrote %d", path, got.Len(), want.Len())
	}
	return nil
}
