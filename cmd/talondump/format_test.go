package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"talon/internal/dot11ad"
	"talon/internal/testutil"
)

// TestFrameJSONGolden pins the -json output shape: one line per frame
// type, compared byte-for-byte against testdata/frames.golden. Field
// renames or reordering in the JSON schema are breaking changes for
// downstream consumers and must show up in review as a golden diff.
func TestFrameJSONGolden(t *testing.T) {
	ap := dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x01}
	sta := dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x02}
	frames := []struct {
		ts float64
		f  *dot11ad.Frame
	}{
		{0.000128, &dot11ad.Frame{Type: dot11ad.TypeDMGBeacon, TA: ap, RA: dot11ad.MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			SSW: dot11ad.SSWField{SectorID: 31, CDOWN: 34}, BeaconIntervalTU: 1024}},
		{0.001250, dot11ad.NewSSWFrame(ap, sta, dot11ad.DirectionResponder, 12, 5,
			dot11ad.SSWFeedbackField{SectorSelect: 61, SNRReport: 128})},
		{0.002375, &dot11ad.Frame{Type: dot11ad.TypeSSWFeedback, TA: ap, RA: sta,
			Feedback: dot11ad.SSWFeedbackField{SectorSelect: 12, SNRReport: 96}}},
		{0.003500, &dot11ad.Frame{Type: dot11ad.TypeSSWAck, TA: sta, RA: ap,
			Feedback: dot11ad.SSWFeedbackField{SectorSelect: 0, SNRReport: 0}}},
	}

	var buf bytes.Buffer
	for _, fr := range frames {
		line, err := frameJSONLine(fr.ts, fr.f)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}

	testutil.Golden(t, filepath.Join("testdata", "frames.golden"), buf.Bytes())
}
