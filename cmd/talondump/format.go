package main

import (
	"encoding/json"

	"talon/internal/dot11ad"
	"talon/internal/sector"
)

// frameJSON is the -json line format. Sector fields use sector.ID's JSON
// encoding ("RX" or the decimal number).
type frameJSON struct {
	Time     float64    `json:"t"`
	Type     string     `json:"type"`
	TA       string     `json:"ta"`
	RA       string     `json:"ra"`
	Sector   *sector.ID `json:"sector,omitempty"`
	CDOWN    *uint16    `json:"cdown,omitempty"`
	FbSector *sector.ID `json:"fb_sector,omitempty"`
	FbSNRdB  *float64   `json:"fb_snr_db,omitempty"`
}

// frameJSONLine renders one captured frame as the -json line (without
// trailing newline). Factored out of the printing path so the output
// shape is testable against a golden file.
func frameJSONLine(ts float64, f *dot11ad.Frame) ([]byte, error) {
	rec := frameJSON{Time: ts, Type: f.Type.String(), TA: f.TA.String(), RA: f.RA.String()}
	switch f.Type {
	case dot11ad.TypeDMGBeacon, dot11ad.TypeSSW:
		sec, cd := f.SSW.SectorID, f.SSW.CDOWN
		rec.Sector, rec.CDOWN = &sec, &cd
	}
	switch f.Type {
	case dot11ad.TypeSSW, dot11ad.TypeSSWFeedback, dot11ad.TypeSSWAck:
		fb, snr := f.Feedback.SectorSelect, dot11ad.DecodeSNR(f.Feedback.SNRReport)
		rec.FbSector, rec.FbSNRdB = &fb, &snr
	}
	return json.Marshal(rec)
}
