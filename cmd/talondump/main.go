// Command talondump is the tcpdump of the simulated testbed: it deploys
// the paper's three-device Table 1 experiment — an AP and a station in
// close proximity plus a third device in monitor mode — captures beacon
// and sector-sweep frames, prints them tcpdump-style, optionally writes a
// pcap file, and reconstructs the burst schedules from the capture
// (Section 4.1's methodology).
//
// It can also decode an existing pcap file with -r.
package main

import (
	"flag"
	"fmt"
	"os"

	"talon/internal/channel"
	"talon/internal/dot11ad"
	"talon/internal/geom"
	"talon/internal/pcap"
	"talon/internal/wil"
)

var (
	seed    = flag.Int64("seed", 1, "device seed")
	rounds  = flag.Int("rounds", 4, "beacon+sweep rounds to capture")
	outFile = flag.String("o", "", "write the capture to this pcap file")
	inFile  = flag.String("r", "", "decode an existing pcap file instead of capturing")
	quiet   = flag.Bool("table-only", false, "only print the reconstructed schedules")
	jsonOut = flag.Bool("json", false, "print frames as JSON lines instead of tcpdump-style")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "talondump:", err)
		os.Exit(1)
	}
}

func run() error {
	if *inFile != "" {
		return decodeFile(*inFile)
	}
	return capture()
}

func decodeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "reading from file %s, link-type %d\n", path, r.LinkType())
	var frames []*dot11ad.Frame
	for {
		pkt, err := r.Next()
		if err != nil {
			break
		}
		frame, err := dot11ad.DecodeFrame(pkt.Data)
		if err != nil {
			fmt.Printf("%12s  undecodable frame (%d bytes): %v\n", pkt.Time.Format("15:04:05.000"), len(pkt.Data), err)
			continue
		}
		frames = append(frames, frame)
		if !*quiet {
			printFrame(float64(pkt.Time.UnixMicro())/1e6, frame)
		}
	}
	printSchedules(frames)
	return nil
}

func capture() error {
	ap, err := wil.NewDevice(wil.Config{
		Name: "ap", MAC: dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x01}, Seed: *seed,
	})
	if err != nil {
		return err
	}
	sta, err := wil.NewDevice(wil.Config{
		Name: "sta", MAC: dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x02}, Seed: *seed + 1,
		Pose: channel.Pose{Pos: geom.Point{X: 2, Z: 1.2}, Yaw: 180},
	})
	if err != nil {
		return err
	}
	mon, err := wil.NewDevice(wil.Config{
		Name: "monitor", MAC: dot11ad.MACAddr{0x50, 0xc7, 0xbf, 0, 0, 0x03}, Seed: *seed + 2,
		Pose: channel.Pose{Pos: geom.Point{X: 1, Y: 1.5, Z: 1.2}, Yaw: -90},
	})
	if err != nil {
		return err
	}
	apPose := channel.Pose{}
	apPose.Pos.Z = 1.2
	ap.SetPose(apPose)

	link := wil.NewLink(channel.Lab(), ap, sta)
	sniffer := link.AttachSniffer(mon)

	for i := 0; i < *rounds; i++ {
		if err := link.TransmitBeaconBurst(ap); err != nil {
			return err
		}
		slots := dot11ad.SweepSchedule()
		if _, err := link.RunSLS(ap, sta, slots, slots); err != nil {
			return err
		}
	}

	caps := sniffer.Captures()
	fmt.Fprintf(os.Stderr, "monitor captured %d frames over %d rounds\n", len(caps), *rounds)
	if !*quiet {
		for _, c := range caps {
			printFrame(c.Time.Seconds(), c.Frame)
		}
	}
	printSchedules(sniffer.Frames())

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sniffer.WritePCAP(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "capture written to %s\n", *outFile)
	}
	return nil
}

func printFrameJSON(ts float64, f *dot11ad.Frame) {
	b, err := frameJSONLine(ts, f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "talondump: json:", err)
		return
	}
	fmt.Println(string(b))
}

func printFrame(ts float64, f *dot11ad.Frame) {
	if *jsonOut {
		printFrameJSON(ts, f)
		return
	}
	switch f.Type {
	case dot11ad.TypeDMGBeacon:
		fmt.Printf("%12.6f  %s > broadcast  DMG-Beacon  sector %2v cdown %2d bi %d TU\n",
			ts, f.TA, f.SSW.SectorID, f.SSW.CDOWN, f.BeaconIntervalTU)
	case dot11ad.TypeSSW:
		dir := "ISS"
		if f.SSW.Direction {
			dir = "RSS"
		}
		fmt.Printf("%12.6f  %s > %s  SSW[%s]  sector %2v cdown %2d  fb sector %2v snr %.2f dB\n",
			ts, f.TA, f.RA, dir, f.SSW.SectorID, f.SSW.CDOWN,
			f.Feedback.SectorSelect, dot11ad.DecodeSNR(f.Feedback.SNRReport))
	case dot11ad.TypeSSWFeedback, dot11ad.TypeSSWAck:
		fmt.Printf("%12.6f  %s > %s  %s  sector %2v snr %.2f dB\n",
			ts, f.TA, f.RA, f.Type, f.Feedback.SectorSelect, dot11ad.DecodeSNR(f.Feedback.SNRReport))
	}
}

func printSchedules(frames []*dot11ad.Frame) {
	beacon, sweep := dot11ad.ReconstructSchedules(frames)
	fmt.Println("\nreconstructed schedules (Table 1 methodology):")
	printObserved := func(name string, o *dot11ad.ObservedSchedule, ref []dot11ad.BurstSlot) {
		fmt.Printf("  %s (%d frames, %d conflicts):\n    ", name, o.Frames, o.Conflicts)
		for _, cd := range o.CDOWNs() {
			fmt.Printf("%v@%d ", o.Sectors[cd], cd)
		}
		fmt.Println()
		correct, missed, wrong := o.MatchAgainst(ref)
		fmt.Printf("    vs firmware truth: %d correct, %d missed, %d wrong\n", correct, missed, wrong)
	}
	printObserved("beacon", beacon, dot11ad.BeaconSchedule())
	printObserved("sweep", sweep, dot11ad.SweepSchedule())
}
