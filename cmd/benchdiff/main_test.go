package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: talon/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateAoA_Hier-8     	   16036	     14884 ns/op	       0 B/op	       0 allocs/op
BenchmarkEstimateAoA_Engine     	    3541	     68544.5 ns/op	       2 B/op	       0 allocs/op
PASS
ok  	talon/internal/core	2.999s
`

func TestParseStripsGOMAXPROCSSuffixAndSorts(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	if results[0].Name != "BenchmarkEstimateAoA_Engine" || results[1].Name != "BenchmarkEstimateAoA_Hier" {
		t.Fatalf("names = %q, %q: want sorted, suffix-stripped", results[0].Name, results[1].Name)
	}
	if results[1].Iters != 16036 || results[1].NsPerOp != 14884 {
		t.Fatalf("hier result = %+v", results[1])
	}
	if results[0].NsPerOp != 68544.5 || results[0].BytesPerOp != 2 {
		t.Fatalf("engine result = %+v", results[0])
	}
}

func TestCompareFlagsRegressionsOnly(t *testing.T) {
	baseline := Baseline{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
	}}
	fresh := []Result{
		{Name: "BenchmarkA", NsPerOp: 125}, // within the 30% budget
		{Name: "BenchmarkB", NsPerOp: 150}, // beyond it
		{Name: "BenchmarkNew", NsPerOp: 10},
	}
	var buf strings.Builder
	regressed := compare(baseline, fresh, 0.30, &buf)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	out := buf.String()
	for _, want := range []string{"<< regression", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestParseSpeedupSpec(t *testing.T) {
	g, err := parseSpeedup("BenchmarkEstimateAoA_Quant>=2xBenchmarkEstimateAoA_Hier")
	if err != nil {
		t.Fatal(err)
	}
	if g.fast != "BenchmarkEstimateAoA_Quant" || g.base != "BenchmarkEstimateAoA_Hier" || g.factor != 2 {
		t.Fatalf("parsed gate = %+v", g)
	}
	if g, err := parseSpeedup("BenchmarkA>=1.5xBenchmarkB"); err != nil || g.factor != 1.5 {
		t.Fatalf("fractional factor: gate %+v, err %v", g, err)
	}
	for _, bad := range []string{"", "BenchmarkA>=xBenchmarkB", "BenchmarkA>2xBenchmarkB", "A>=2xBenchmarkB", "BenchmarkA>=0xBenchmarkB", "BenchmarkA>=-1xBenchmarkB"} {
		if _, err := parseSpeedup(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestCheckSpeedupsGates(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkQuant", NsPerOp: 100},
		{Name: "BenchmarkHier", NsPerOp: 310},
		{Name: "BenchmarkSlow", NsPerOp: 150},
	}
	gates := []speedupGate{
		{fast: "BenchmarkQuant", base: "BenchmarkHier", factor: 3},   // 3.1x, passes
		{fast: "BenchmarkSlow", base: "BenchmarkHier", factor: 3},    // 2.07x, fails
		{fast: "BenchmarkQuant", base: "BenchmarkGone", factor: 1.5}, // missing, fails
	}
	var buf strings.Builder
	violations := checkSpeedups(gates, fresh, &buf)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want 2", violations)
	}
	if !strings.Contains(violations[0], "BenchmarkSlow") || !strings.Contains(violations[1], "missing") {
		t.Fatalf("violations = %v", violations)
	}
	out := buf.String()
	if !strings.Contains(out, "ok") || !strings.Contains(out, "VIOLATED") {
		t.Fatalf("gate table missing statuses:\n%s", out)
	}
}
