package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: talon/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateAoA_Hier-8     	   16036	     14884 ns/op	       0 B/op	       0 allocs/op
BenchmarkEstimateAoA_Engine     	    3541	     68544.5 ns/op	       2 B/op	       0 allocs/op
PASS
ok  	talon/internal/core	2.999s
`

func TestParseStripsGOMAXPROCSSuffixAndSorts(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	if results[0].Name != "BenchmarkEstimateAoA_Engine" || results[1].Name != "BenchmarkEstimateAoA_Hier" {
		t.Fatalf("names = %q, %q: want sorted, suffix-stripped", results[0].Name, results[1].Name)
	}
	if results[1].Iters != 16036 || results[1].NsPerOp != 14884 {
		t.Fatalf("hier result = %+v", results[1])
	}
	if results[0].NsPerOp != 68544.5 || results[0].BytesPerOp != 2 {
		t.Fatalf("engine result = %+v", results[0])
	}
}

func TestCompareFlagsRegressionsOnly(t *testing.T) {
	baseline := Baseline{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
	}}
	fresh := []Result{
		{Name: "BenchmarkA", NsPerOp: 125}, // within the 30% budget
		{Name: "BenchmarkB", NsPerOp: 150}, // beyond it
		{Name: "BenchmarkNew", NsPerOp: 10},
	}
	var buf strings.Builder
	regressed := compare(baseline, fresh, 0.30, &buf)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	out := buf.String()
	for _, want := range []string{"<< regression", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}
}
