// Command benchdiff records and compares Go benchmark results without
// external tooling. It reads the text output of `go test -bench` on
// stdin and either canonicalizes it to JSON (-record, the format of the
// committed BENCH_engine.json baseline) or renders a benchstat-style
// comparison against such a baseline (-against).
//
// Recording a baseline:
//
//	go test ./internal/core/ -run xxx -bench 'Estimate|SelectSector|Batch' \
//	    -benchmem -benchtime 200ms | go run ./cmd/benchdiff -record > BENCH_engine.json
//
// Comparing a fresh run (advisory by default; -strict exits non-zero
// when any benchmark slows down by more than -threshold):
//
//	go test ./internal/core/ -run xxx -bench ... | \
//	    go run ./cmd/benchdiff -against BENCH_engine.json
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix so baselines recorded on machines with different core counts
// still line up. Comparisons are advisory by design: single-run deltas
// on shared CI hardware are noisy, so CI runs them with -strict off and
// a generous threshold, and regressions are triaged by a human.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark line in canonical form.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the committed benchmark snapshot.
type Baseline struct {
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkFoo-8  1234  77458 ns/op ...`; the unit
// fields after ns/op are parsed separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	unitField = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)
)

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		for _, u := range unitField.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(u[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad %s in %q: %w", u[2], sc.Text(), err)
			}
			switch u[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func record(results []Result, note string, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Note: note, Benchmarks: results})
}

// compare prints a delta table and returns the names of benchmarks whose
// ns/op regressed beyond threshold (a fraction, e.g. 0.30 for +30%).
func compare(baseline Baseline, fresh []Result, threshold float64, w io.Writer) []string {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	var regressed []string
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := r.NsPerOp/b.NsPerOp - 1
		marker := ""
		if delta > threshold {
			marker = "  << regression"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+7.1f%%%s\n", r.Name, b.NsPerOp, r.NsPerOp, 100*delta, marker)
		delete(base, r.Name)
	}
	var missing []string
	for name := range base {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "%-40s %14.0f %14s %8s\n", name, base[name].NsPerOp, "-", "gone")
	}
	return regressed
}

func main() {
	var (
		doRecord  = flag.Bool("record", false, "canonicalize `go test -bench` text from stdin to baseline JSON on stdout")
		against   = flag.String("against", "", "baseline JSON `file` to compare stdin's bench text against")
		strict    = flag.Bool("strict", false, "with -against: exit 1 when any benchmark regresses beyond -threshold")
		threshold = flag.Float64("threshold", 0.30, "regression threshold as a fraction of baseline ns/op")
		note      = flag.String("note", "", "free-form provenance note stored in the recorded baseline")
	)
	flag.Parse()
	if *doRecord == (*against != "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -record or -against is required")
		os.Exit(2)
	}
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}
	if *doRecord {
		if err := record(results, *note, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	raw, err := os.ReadFile(*against)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var baseline Baseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *against, err)
		os.Exit(2)
	}
	regressed := compare(baseline, results, *threshold, os.Stdout)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) beyond +%.0f%%: %v\n",
			len(regressed), 100**threshold, regressed)
		if *strict {
			os.Exit(1)
		}
	}
}
