// Command benchdiff records and compares Go benchmark results without
// external tooling. It reads the text output of `go test -bench` on
// stdin and either canonicalizes it to JSON (-record, the format of the
// committed BENCH_engine.json baseline) or renders a benchstat-style
// comparison against such a baseline (-against).
//
// Recording a baseline:
//
//	go test ./internal/core/ -run xxx -bench 'Estimate|SelectSector|Batch' \
//	    -benchmem -benchtime 200ms | go run ./cmd/benchdiff -record > BENCH_engine.json
//
// Comparing a fresh run (advisory by default; -strict exits non-zero
// when any benchmark slows down by more than -threshold):
//
//	go test ./internal/core/ -run xxx -bench ... | \
//	    go run ./cmd/benchdiff -against BENCH_engine.json
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix so baselines recorded on machines with different core counts
// still line up. Comparisons are advisory by design: single-run deltas
// on shared CI hardware are noisy, so CI runs them with -strict off and
// a generous threshold, and regressions are triaged by a human.
//
// Same-run speed-up gates (-speedup, repeatable) assert a ratio between
// two benchmarks of the fresh run itself:
//
//	go test ./internal/core/ -run xxx -bench ... | \
//	    go run ./cmd/benchdiff -against BENCH_engine.json \
//	    -speedup 'BenchmarkEstimateAoA_Quant>=2xBenchmarkEstimateAoA_Hier'
//
// Unlike baseline deltas these compare two measurements from the same
// machine and process, so they are enforced (exit 1 on violation) even
// without -strict.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark line in canonical form.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the committed benchmark snapshot.
type Baseline struct {
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkFoo-8  1234  77458 ns/op ...`; the unit
// fields after ns/op are parsed separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	unitField = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)
)

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		for _, u := range unitField.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(u[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad %s in %q: %w", u[2], sc.Text(), err)
			}
			switch u[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func record(results []Result, note string, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Note: note, Benchmarks: results})
}

// compare prints a delta table and returns the names of benchmarks whose
// ns/op regressed beyond threshold (a fraction, e.g. 0.30 for +30%).
func compare(baseline Baseline, fresh []Result, threshold float64, w io.Writer) []string {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	var regressed []string
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := r.NsPerOp/b.NsPerOp - 1
		marker := ""
		if delta > threshold {
			marker = "  << regression"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+7.1f%%%s\n", r.Name, b.NsPerOp, r.NsPerOp, 100*delta, marker)
		delete(base, r.Name)
	}
	var missing []string
	for name := range base {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "%-40s %14.0f %14s %8s\n", name, base[name].NsPerOp, "-", "gone")
	}
	return regressed
}

// speedupGate asserts fast.NsPerOp*factor <= base.NsPerOp within one run.
type speedupGate struct {
	fast, base string
	factor     float64
}

// speedupSpec matches 'FAST>=FACTORxBASE', e.g.
// 'BenchmarkEstimateAoA_Quant>=2xBenchmarkEstimateAoA_Hier'.
var speedupSpec = regexp.MustCompile(`^(Benchmark\S+?)>=([0-9.]+)x(Benchmark\S+)$`)

func parseSpeedup(spec string) (speedupGate, error) {
	m := speedupSpec.FindStringSubmatch(spec)
	if m == nil {
		return speedupGate{}, fmt.Errorf("benchdiff: bad -speedup %q: want 'FAST>=FACTORxBASE'", spec)
	}
	factor, err := strconv.ParseFloat(m[2], 64)
	if err != nil || factor <= 0 {
		return speedupGate{}, fmt.Errorf("benchdiff: bad -speedup factor in %q", spec)
	}
	return speedupGate{fast: m[1], base: m[3], factor: factor}, nil
}

// checkSpeedups evaluates the gates against one run's results and
// returns a violation message per failed gate. A gate whose benchmarks
// are absent from the run fails too — a silently skipped gate would
// read as a pass.
func checkSpeedups(gates []speedupGate, fresh []Result, w io.Writer) []string {
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var violations []string
	for _, g := range gates {
		fast, okF := byName[g.fast]
		base, okB := byName[g.base]
		if !okF || !okB {
			violations = append(violations, fmt.Sprintf("%s>=%gx%s: benchmark missing from run", g.fast, g.factor, g.base))
			continue
		}
		got := base.NsPerOp / fast.NsPerOp
		status := "ok"
		if fast.NsPerOp*g.factor > base.NsPerOp {
			status = "VIOLATED"
			violations = append(violations, fmt.Sprintf("%s is %.2fx faster than %s, want >=%gx", g.fast, got, g.base, g.factor))
		}
		fmt.Fprintf(w, "speedup %-72s %6.2fx  %s\n", fmt.Sprintf("%s>=%gx%s", g.fast, g.factor, g.base), got, status)
	}
	return violations
}

func main() {
	var (
		doRecord  = flag.Bool("record", false, "canonicalize `go test -bench` text from stdin to baseline JSON on stdout")
		against   = flag.String("against", "", "baseline JSON `file` to compare stdin's bench text against")
		strict    = flag.Bool("strict", false, "with -against: exit 1 when any benchmark regresses beyond -threshold")
		threshold = flag.Float64("threshold", 0.30, "regression threshold as a fraction of baseline ns/op")
		note      = flag.String("note", "", "free-form provenance note stored in the recorded baseline")
	)
	var gates []speedupGate
	flag.Func("speedup", "same-run ratio gate 'FAST>=FACTORxBASE' (repeatable); exit 1 on violation", func(spec string) error {
		g, err := parseSpeedup(spec)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	flag.Parse()
	if *doRecord == (*against != "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -record or -against is required")
		os.Exit(2)
	}
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}
	if *doRecord {
		if err := record(results, *note, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Gate table goes to stderr so stdout stays valid baseline JSON.
		if v := checkSpeedups(gates, results, os.Stderr); len(v) > 0 {
			for _, msg := range v {
				fmt.Fprintln(os.Stderr, "benchdiff: speedup gate:", msg)
			}
			os.Exit(1)
		}
		return
	}
	raw, err := os.ReadFile(*against)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var baseline Baseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *against, err)
		os.Exit(2)
	}
	regressed := compare(baseline, results, *threshold, os.Stdout)
	violations := checkSpeedups(gates, results, os.Stdout)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) beyond +%.0f%%: %v\n",
			len(regressed), 100**threshold, regressed)
		if *strict {
			os.Exit(1)
		}
	}
	if len(violations) > 0 {
		for _, msg := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: speedup gate:", msg)
		}
		os.Exit(1)
	}
}
