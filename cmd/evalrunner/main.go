// Command evalrunner regenerates the tables and figures of the paper's
// evaluation section from the simulation, printing the same rows and
// series the paper reports.
//
// Usage:
//
//	evalrunner [-fidelity quick|full] [-seed N] -exp <experiment>
//
// Experiments:
//
//	table1     stock beacon/sweep burst schedules
//	fig5       azimuth-plane patterns of all 35 sectors
//	fig6       spherical (3D) patterns
//	fig7       angular estimation error vs probing sectors (lab + conference)
//	fig8       selection stability vs probing sectors
//	fig9       SNR loss vs probing sectors
//	fig10      training time vs probing sectors
//	fig11      expected throughput at -45/0/45 degrees
//	headline   condensed headline numbers vs the paper
//	ablations  the DESIGN.md ablation studies
//	retraining the Section 7 retraining-cadence study under mobility
//	blockage   backup sectors from multipath estimation under LOS blockage
//	density    dense-deployment channel-pollution study
//	densify    codebook densification study (CSS scales, SSW does not)
//	faultsweep resilient CSS under injected Gilbert–Elliott frame loss
//	css        one end-to-end compressive training on the public API
//	all        everything above
//
// Estimation: -exact forces the paper-faithful exhaustive grid search;
// by default the estimators run the hierarchical coarse-to-fine search
// (same selections on essentially all inputs, several times faster —
// see DESIGN.md §12). -workers bounds the trial-loop parallelism; the
// engine's internal sharding is capped automatically so trial workers ×
// engine shards never oversubscribes GOMAXPROCS.
//
// Fault injection: -fault-rates sets the loss rates the faultsweep
// experiment sweeps (comma-separated), -fault-burst the mean loss-burst
// length in frames, -fault-trials the trials per rate and -fault-retries
// the resilient trainer's retry budget.
//
// Observability: -metrics dumps the metrics registry as JSON on exit
// ("-" = stdout), -debug serves /metrics and /debug/pprof while the
// experiments run, -cpuprofile writes a pprof CPU profile.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/eval"
	"talon/internal/obs"
	"talon/internal/stats"
)

var (
	fidelity   = flag.String("fidelity", "full", "experiment fidelity: quick or full")
	seed       = flag.Int64("seed", 42, "experiment seed")
	exp        = flag.String("exp", "all", "experiment to run")
	workers    = flag.Int("workers", 0, "trial-loop worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	exact      = flag.Bool("exact", false, "force the paper-faithful exhaustive grid search instead of the hierarchical coarse-to-fine search")
	metricsOut = flag.String("metrics", "", "dump the metrics registry as JSON to this file on exit (\"-\" = stdout)")
	debugAddr  = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")

	faultRates   = flag.String("fault-rates", "0,0.05,0.1,0.2", "faultsweep: comma-separated Gilbert–Elliott loss rates")
	faultBurst   = flag.Float64("fault-burst", 4, "faultsweep: mean loss-burst length in frames")
	faultTrials  = flag.Int("fault-trials", 0, "faultsweep: trials per loss rate (0 = fidelity default)")
	faultRetries = flag.Int("fault-retries", 3, "faultsweep: CSS retry budget per training")
)

func main() {
	flag.Parse()
	eval.SetParallelism(*workers)
	if *exact {
		eval.SetEstimatorOptions(core.Options{ExactSearch: true})
	}
	cleanup, err := obs.HookCLI(*metricsOut, *debugAddr, *cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err = run(ctx)
	if cerr := cleanup(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "evalrunner: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
}

func pick() (eval.Fidelity, error) {
	switch *fidelity {
	case "quick":
		return eval.Quick(), nil
	case "full":
		return eval.Full(), nil
	}
	return eval.Fidelity{}, fmt.Errorf("unknown fidelity %q", *fidelity)
}

func run(ctx context.Context) error {
	f, err := pick()
	if err != nil {
		return err
	}
	switch *exp {
	case "table1":
		fmt.Print(eval.Table1().Format())
		return nil
	case "fig5":
		return runFig5(ctx)
	case "fig6":
		return runFig6(ctx)
	case "fig7", "fig8", "fig9", "headline":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		switch *exp {
		case "fig7":
			fmt.Print(study.Figure7().Format())
		case "fig8":
			fmt.Print(study.Figure8().Format())
		case "fig9":
			fmt.Print(study.Figure9().Format())
		case "headline":
			fmt.Print(eval.ComputeHeadline(study).Format())
		}
		return nil
	case "fig10":
		fmt.Print(eval.Figure10().Format())
		return nil
	case "fig11":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		return runFig11(ctx, study)
	case "ablations":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		return runAblations(ctx, study, f)
	case "retraining":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		return runRetraining(ctx, study)
	case "blockage":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		return runBlockage(ctx, study)
	case "density":
		fmt.Print(eval.DensityStudy(14, 5.5, nil).Format())
		return nil
	case "densify":
		return runDensify(ctx)
	case "faultsweep":
		study, err := runStudy(ctx, f)
		if err != nil {
			return err
		}
		return runFaultSweep(ctx, study)
	case "css":
		return runCSS(ctx)
	case "all":
		return runAll(ctx, f)
	}
	return fmt.Errorf("unknown experiment %q", *exp)
}

func runStudy(ctx context.Context, f eval.Fidelity) (*eval.EnvironmentStudy, error) {
	fmt.Fprintf(os.Stderr, "running environment study (%s fidelity, seed %d, %d workers)...\n", *fidelity, *seed, eval.Parallelism())
	start := time.Now()
	study, err := eval.RunEnvironmentStudy(ctx, *seed, f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "study finished in %v\n", time.Since(start).Round(time.Second))
	return study, nil
}

func runFig5(ctx context.Context) error {
	azStep := 0.9
	repeats := 3
	if *fidelity == "quick" {
		azStep, repeats = 4.5, 1
	}
	r, err := eval.Figure5(ctx, *seed, azStep, repeats)
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	strong, wide, weak := r.Classify()
	fmt.Printf("strong unidirectional: %v\nmulti-lobe/wide:       %v\nlow gain:              %v\n", strong, wide, weak)
	return nil
}

func runFig6(ctx context.Context) error {
	azStep, elStep := 1.8, 3.6
	repeats := 3
	if *fidelity == "quick" {
		azStep, elStep, repeats = 9, 10.8, 1
	}
	r, err := eval.Figure6(ctx, *seed, azStep, elStep, repeats)
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}

func runFig11(ctx context.Context, study *eval.EnvironmentStudy) error {
	sweeps := 10
	if *fidelity == "quick" {
		sweeps = 4
	}
	r, err := eval.Figure11(ctx, study.Platform, 14, sweeps, stats.NewRNG(*seed).Split("fig11"))
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}

func runAblations(ctx context.Context, study *eval.EnvironmentStudy, f eval.Fidelity) error {
	rng := stats.NewRNG(*seed).Split("ablations")
	traces, err := study.Platform.Scan(ctx, channel.ConferenceRoom(), 6, f.Conference)
	if err != nil {
		return err
	}
	subsets := f.SubsetsPerSweep
	if joint, err := eval.AblationJointCorrelation(ctx, study.Platform, traces, 14, subsets, rng); err == nil {
		fmt.Print(joint.Format())
	} else {
		return err
	}
	if ideal, err := eval.AblationMeasuredVsIdeal(ctx, study.Platform, traces, 14, subsets, rng); err == nil {
		fmt.Print(ideal.Format())
	} else {
		return err
	}
	if sel, err := eval.AblationProbeSelection(ctx, study.Platform, traces, 14, subsets, rng); err == nil {
		fmt.Print(sel.Format())
	} else {
		return err
	}
	if beams, err := eval.AblationRandomBeams(*seed, 6); err == nil {
		fmt.Print(beams.Format())
	} else {
		return err
	}
	steps := 200
	if *fidelity == "quick" {
		steps = 60
	}
	adaptive, err := eval.AblationAdaptiveProbes(ctx, study.Platform, steps, rng)
	if err != nil {
		return err
	}
	fmt.Print(adaptive.Format())
	return nil
}

func runAll(ctx context.Context, f eval.Fidelity) error {
	fmt.Print(eval.Table1().Format())
	fmt.Println()
	if err := runFig5(ctx); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig6(ctx); err != nil {
		return err
	}
	fmt.Println()
	study, err := runStudy(ctx, f)
	if err != nil {
		return err
	}
	fmt.Print(study.Figure7().Format())
	fmt.Println()
	fmt.Print(study.Figure8().Format())
	fmt.Println()
	fmt.Print(study.Figure9().Format())
	fmt.Println()
	fmt.Print(eval.Figure10().Format())
	fmt.Println()
	if err := runFig11(ctx, study); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(eval.ComputeHeadline(study).Format())
	fmt.Println()
	if err := runAblations(ctx, study, f); err != nil {
		return err
	}
	fmt.Println()
	if err := runRetraining(ctx, study); err != nil {
		return err
	}
	fmt.Println()
	if err := runBlockage(ctx, study); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(eval.DensityStudy(14, 5.5, nil).Format())
	fmt.Println()
	if err := runDensify(ctx); err != nil {
		return err
	}
	fmt.Println()
	if err := runFaultSweep(ctx, study); err != nil {
		return err
	}
	fmt.Println()
	return runCSS(ctx)
}

func runFaultSweep(ctx context.Context, study *eval.EnvironmentStudy) error {
	rates, err := parseRates(*faultRates)
	if err != nil {
		return err
	}
	trials := *faultTrials
	if trials <= 0 {
		trials = 200
		if *fidelity == "quick" {
			trials = 50
		}
	}
	r, err := eval.FaultSweep(ctx, study.Platform, eval.FaultSweepConfig{
		LossRates: rates,
		MeanBurst: *faultBurst,
		Trials:    trials,
		Retries:   *faultRetries,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-rates entry %q: %w", field, err)
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("-fault-rates entry %v out of [0, 1)", v)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-fault-rates is empty")
	}
	return rates, nil
}

func runDensify(ctx context.Context) error {
	trials := 120
	if *fidelity == "quick" {
		trials = 30
	}
	r, err := eval.DensifyStudy(ctx, *seed, 14, nil, trials, stats.NewRNG(*seed).Split("densify"))
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}

func runBlockage(ctx context.Context, study *eval.EnvironmentStudy) error {
	rounds := 30
	if *fidelity == "quick" {
		rounds = 10
	}
	r, err := eval.BlockageStudy(ctx, study.Platform, 24, rounds, stats.NewRNG(*seed).Split("blockage"))
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}

func runRetraining(ctx context.Context, study *eval.EnvironmentStudy) error {
	dur := 20 * time.Second
	if *fidelity == "quick" {
		dur = 6 * time.Second
	}
	r, err := eval.RetrainingStudy(ctx, study.Platform, 20, dur, stats.NewRNG(*seed).Split("retraining"))
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	return nil
}
