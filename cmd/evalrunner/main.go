// Command evalrunner regenerates the tables and figures of the paper's
// evaluation section from the simulation, printing the same rows and
// series the paper reports.
//
// Usage:
//
//	evalrunner [-fidelity quick|full] [-seed N] -exp <study>[,<study>...]
//	evalrunner -list
//	evalrunner -record [-store DIR] [-trials N]
//	evalrunner -replay [-store DIR] [-out DIR]
//
// Studies are registered in internal/eval's registry; -list enumerates
// them and -exp all runs every one in the canonical order. Each study
// returns a typed report: the Table rendering goes to stdout, and with
// -out DIR the runner additionally writes <study>.txt and <study>.json
// artifacts.
//
// Campaign record/replay: -record draws the campaign's trials once and
// streams them into columnar trace-store shards under -store; -replay
// streams the shards back through the estimator and emits the
// deterministic scorecard (byte-identical at any -workers). Use both
// flags together for a record-then-replay round trip, or record once and
// replay many times.
//
// Estimation: -exact forces the paper-faithful exhaustive grid search;
// by default the estimators run the hierarchical coarse-to-fine search
// (same selections on essentially all inputs, several times faster —
// see DESIGN.md §12). -workers bounds the trial-loop parallelism; the
// engine's internal sharding is capped automatically so trial workers ×
// engine shards never oversubscribes GOMAXPROCS.
//
// Fault injection: -fault-rates sets the loss rates the faultsweep
// study sweeps (comma-separated), -fault-burst the mean loss-burst
// length in frames, -fault-trials the trials per rate and -fault-retries
// the resilient trainer's retry budget.
//
// Observability: -metrics dumps the metrics registry as JSON on exit
// ("-" = stdout), -debug serves /metrics and /debug/pprof while the
// experiments run, -cpuprofile writes a pprof CPU profile. Peak RSS is
// reported on stderr after the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"talon/internal/core"
	"talon/internal/eval"
	"talon/internal/obs"
)

var (
	fidelity   = flag.String("fidelity", "full", "experiment fidelity: quick or full")
	seed       = flag.Int64("seed", 42, "experiment seed")
	exp        = flag.String("exp", "all", "comma-separated studies to run (see -list)")
	list       = flag.Bool("list", false, "list the registered studies and exit")
	outDir     = flag.String("out", "", "also write <study>.txt and <study>.json artifacts to this directory")
	workers    = flag.Int("workers", 0, "trial-loop worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	exact      = flag.Bool("exact", false, "force the paper-faithful exhaustive grid search instead of the hierarchical coarse-to-fine search")
	metricsOut = flag.String("metrics", "", "dump the metrics registry as JSON to this file on exit (\"-\" = stdout)")
	debugAddr  = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")

	record       = flag.Bool("record", false, "record the campaign into trace-store shards and exit (combine with -replay for a round trip)")
	replay       = flag.Bool("replay", false, "replay recorded trace-store shards into the campaign scorecard")
	store        = flag.String("store", "campaign-shards", "campaign shard directory")
	trials       = flag.Int("trials", 0, "campaign trial count (0 = default)")
	split        = flag.Uint64("split", 0, "campaign in/out-of-sample boundary seed (0 = 80% shard boundary)")
	shardRecords = flag.Int("shard-records", 0, "campaign records per shard file (0 = default)")
	mapped       = flag.Bool("mmap", false, "replay through memory-mapped shard readers (falls back to buffered reads per file; scorecard is identical either way)")

	faultRates   = flag.String("fault-rates", "0,0.05,0.1,0.2", "faultsweep: comma-separated Gilbert–Elliott loss rates")
	faultBurst   = flag.Float64("fault-burst", 4, "faultsweep: mean loss-burst length in frames")
	faultTrials  = flag.Int("fault-trials", 0, "faultsweep: trials per loss rate (0 = fidelity default)")
	faultRetries = flag.Int("fault-retries", 3, "faultsweep: CSS retry budget per training")
)

func main() {
	flag.Parse()
	eval.SetParallelism(*workers)
	if *exact {
		eval.SetEstimatorOptions(core.Options{ExactSearch: true})
	}
	cleanup, err := obs.HookCLI(*metricsOut, *debugAddr, *cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err = run(ctx)
	if cerr := cleanup(); cerr != nil && err == nil {
		err = cerr
	}
	reportPeakRSS()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "evalrunner: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
}

func pick() (eval.Fidelity, error) {
	switch *fidelity {
	case "quick":
		return eval.Quick(), nil
	case "full":
		return eval.Full(), nil
	}
	return eval.Fidelity{}, fmt.Errorf("unknown fidelity %q", *fidelity)
}

// buildConfig assembles the cross-study Config from the flags.
func buildConfig(f eval.Fidelity) (eval.Config, error) {
	cfg := eval.NewConfig(f, *seed)
	rates, err := parseRates(*faultRates)
	if err != nil {
		return cfg, err
	}
	cfg.Fault = eval.FaultSweepConfig{
		LossRates: rates,
		MeanBurst: *faultBurst,
		Trials:    *faultTrials,
		Retries:   *faultRetries,
		Seed:      *seed,
	}
	cfg.Campaign = eval.CampaignConfig{
		Dir:             *store,
		Trials:          *trials,
		SplitSeed:       *split,
		RecordsPerShard: *shardRecords,
		Workers:         eval.Parallelism(),
		MappedIO:        *mapped,
	}
	return cfg, nil
}

func run(ctx context.Context) error {
	if *list {
		for _, name := range eval.StudyNames() {
			fmt.Println(name)
		}
		return nil
	}
	f, err := pick()
	if err != nil {
		return err
	}
	cfg, err := buildConfig(f)
	if err != nil {
		return err
	}
	if *record || *replay {
		return runCampaignPipeline(ctx, cfg)
	}

	names := eval.StudyNames()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	var p *eval.Platform
	for i, name := range names {
		name = strings.TrimSpace(name)
		study, ok := eval.Lookup(name)
		if !ok {
			return eval.UnknownStudyError(name)
		}
		if eval.NeedsPlatform(study) && p == nil {
			p, err = buildPlatform(ctx, f)
			if err != nil {
				return err
			}
		}
		start := time.Now()
		rep, err := study.Run(ctx, p, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "%s finished in %v: %s\n", name, time.Since(start).Round(time.Millisecond), rep.Summary())
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep.Table())
		if err := writeArtifacts(name, rep); err != nil {
			return err
		}
	}
	return nil
}

// buildPlatform runs the chamber campaign once for every platform study.
func buildPlatform(ctx context.Context, f eval.Fidelity) (*eval.Platform, error) {
	fmt.Fprintf(os.Stderr, "building platform (%s fidelity, seed %d, %d workers)...\n", *fidelity, *seed, eval.Parallelism())
	start := time.Now()
	p, err := eval.NewPlatform(ctx, *seed, f.PatternGrid, f.CampaignRepeats)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "platform ready in %v\n", time.Since(start).Round(time.Millisecond))
	return p, nil
}

// runCampaignPipeline drives the record-once/replay-many campaign flow.
func runCampaignPipeline(ctx context.Context, cfg eval.Config) error {
	f := cfg.Fidelity
	p, err := buildPlatform(ctx, f)
	if err != nil {
		return err
	}
	if *record {
		start := time.Now()
		shards, err := eval.RecordCampaign(ctx, p, cfg.Campaign)
		if err != nil {
			return err
		}
		var total uint64
		for _, sh := range shards {
			total += sh.Header.Records
		}
		fmt.Fprintf(os.Stderr, "recorded %d trials into %d shards under %s in %v\n",
			total, len(shards), *store, time.Since(start).Round(time.Millisecond))
	}
	if !*replay {
		return nil
	}
	start := time.Now()
	sc, err := eval.ReplayCampaign(ctx, p, cfg.Campaign)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replay finished in %v (%d workers)\n", time.Since(start).Round(time.Millisecond), eval.Parallelism())
	fmt.Print(sc.Table())
	return writeArtifacts("campaign", sc)
}

// writeArtifacts writes the report's text and JSON renderings under
// -out, when set.
func writeArtifacts(name string, rep eval.Report) error {
	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(rep.Table()), 0o644); err != nil {
		return err
	}
	b, err := rep.MarshalJSON()
	if err != nil {
		return fmt.Errorf("%s: marshal: %w", name, err)
	}
	return os.WriteFile(filepath.Join(*outDir, name+".json"), append(b, '\n'), 0o644)
}

// reportPeakRSS prints the process's peak resident set (VmHWM) so
// bounded-memory claims are checkable from any run's stderr.
func reportPeakRSS() {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			fmt.Fprintf(os.Stderr, "peak RSS: %s\n", strings.TrimSpace(strings.TrimPrefix(line, "VmHWM:")))
			return
		}
	}
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-rates entry %q: %w", field, err)
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("-fault-rates entry %v out of [0, 1)", v)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-fault-rates is empty")
	}
	return rates, nil
}
