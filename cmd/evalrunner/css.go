package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"talon"
	"talon/internal/core"
)

// runCSS runs one real compressive training campaign end to end on the
// public API — pattern measurement, Trainer.Run with the full protocol
// exchange — and prints the outcome both human-readably (the String
// forms of Probe and Selection) and as a JSON record.
func runCSS(ctx context.Context) error {
	ap, err := talon.NewDevice(talon.DeviceConfig{Name: "ap", Seed: *seed})
	if err != nil {
		return err
	}
	sta, err := talon.NewDevice(talon.DeviceConfig{Name: "sta", Seed: *seed + 1})
	if err != nil {
		return err
	}
	for _, d := range []*talon.Device{ap, sta} {
		if err := d.Jailbreak(); err != nil {
			return err
		}
	}

	grid, repeats := talon.DefaultPatternGrid(), 3
	if *fidelity == "quick" {
		g, err := talon.NewGrid(-90, 90, 9, 0, 32, 8)
		if err != nil {
			return err
		}
		grid, repeats = g, 1
	}
	fmt.Fprintf(os.Stderr, "measuring patterns (%d grid points x %d repeats)...\n", grid.Size(), repeats)
	start := time.Now()
	patterns, err := talon.MeasurePatterns(ctx, ap, sta, grid, repeats)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pattern campaign finished in %v\n", time.Since(start).Round(time.Millisecond))

	// Deploy in the conference room: AP turned 25° away, station 6 m out.
	link := talon.NewLink(talon.ConferenceRoom(), ap, sta)
	apPose := talon.Pose{Yaw: -25}
	apPose.Pos.Z = 1.2
	staPose := talon.Pose{Yaw: 180}
	staPose.Pos.X = 6
	staPose.Pos.Z = 1.2
	ap.SetPose(apPose)
	sta.SetPose(staPose)

	trainer, err := talon.NewTrainer(link, patterns, talon.WithM(14), talon.WithSeed(*seed))
	if err != nil {
		return err
	}
	res, err := trainer.Run(ctx, ap, sta, talon.Mutual())
	if err != nil {
		return err
	}

	probes := core.ProbesFromMeasurements(res.Probed, res.SLS.AtResponder)
	fmt.Println("compressive training (conference room, M = 14):")
	for _, p := range probes {
		fmt.Println("  probe", p)
	}
	fmt.Println("selection:", res.Selection)
	fmt.Printf("true SNR on sector %v: %.1f dB\n", res.Sector, link.TrueSNR(ap, sta, res.Sector))

	rec := struct {
		Selection talon.Selection `json:"selection"`
		Probes    []talon.Probe   `json:"probes"`
		Sector    talon.SectorID  `json:"sector"`
		TrueSNRdB float64         `json:"true_snr_db"`
	}{res.Selection, probes, res.Sector, link.TrueSNR(ap, sta, res.Sector)}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}
