package talon_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation studies DESIGN.md calls out and micro-benchmarks of the hot
// paths. The figure benches share one captured data set (chamber pattern
// campaign + conference-room traces) and time the per-figure analysis.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"sync"
	"testing"
	"time"

	"talon/internal/antenna"
	"talon/internal/channel"
	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/eval"
	"talon/internal/sector"
	"talon/internal/stats"
	"talon/internal/testbed"
	"talon/internal/wil"
)

// benchRig is the shared captured data set for the figure benches.
type benchRig struct {
	platform *eval.Platform
	traces   []testbed.Trace
	labTrcs  []testbed.Trace
	fidelity eval.Fidelity
}

var (
	rigOnce sync.Once
	rig     *benchRig
	rigErr  error
)

func benchSetup(b *testing.B) *benchRig {
	b.Helper()
	rigOnce.Do(func() {
		f := eval.Quick()
		p, err := eval.NewPlatform(context.Background(), 42, f.PatternGrid, f.CampaignRepeats)
		if err != nil {
			rigErr = err
			return
		}
		conf, err := p.Scan(context.Background(), channel.ConferenceRoom(), 6, f.Conference)
		if err != nil {
			rigErr = err
			return
		}
		lab, err := p.Scan(context.Background(), channel.Lab(), 3, f.Lab)
		if err != nil {
			rigErr = err
			return
		}
		rig = &benchRig{platform: p, traces: conf, labTrcs: lab, fidelity: f}
	})
	if rigErr != nil {
		b.Fatal(rigErr)
	}
	return rig
}

// BenchmarkTable1_BurstSchedules regenerates Table 1.
func BenchmarkTable1_BurstSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table1()
		if len(r.Sweep) != 35 {
			b.Fatal("bad schedule")
		}
		_ = r.Table()
	}
}

// BenchmarkFigure5_AzimuthPatterns runs the azimuth-cut chamber campaign
// (coarsened grid; the paper's 0.9° steps scale linearly).
func BenchmarkFigure5_AzimuthPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure5(context.Background(), int64(i)+1, 9, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Summaries) != 35 {
			b.Fatal("missing sectors")
		}
	}
}

// BenchmarkFigure6_SphericalPatterns runs the 3D chamber campaign
// (coarsened grid).
func BenchmarkFigure6_SphericalPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure6(context.Background(), int64(i)+1, 12, 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Summaries) != 35 {
			b.Fatal("missing sectors")
		}
	}
}

// BenchmarkFigure7_PathEstimationError evaluates the angular estimation
// error over the captured lab traces.
func BenchmarkFigure7_PathEstimationError(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te, err := eval.EvaluateTraces(context.Background(), "lab", r.labTrcs, r.platform.Estimator, []int{10, 20}, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		if len(te.PerM) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFigure8_SelectionStability evaluates selection stability over
// the conference-room traces.
func BenchmarkFigure8_SelectionStability(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te, err := eval.EvaluateTraces(context.Background(), "conference", r.traces, r.platform.Estimator, []int{14}, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		if te.SSW.Stability <= 0 {
			b.Fatal("degenerate stability")
		}
	}
}

// BenchmarkFigure9_SNRLoss evaluates the SNR-loss series.
func BenchmarkFigure9_SNRLoss(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te, err := eval.EvaluateTraces(context.Background(), "conference", r.traces, r.platform.Estimator, []int{6, 14, 34}, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		if len(te.PerM[0].SNRLoss) == 0 {
			b.Fatal("no losses recorded")
		}
	}
}

// BenchmarkFigure10_TrainingTime evaluates the training-time model.
func BenchmarkFigure10_TrainingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Figure10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if sp := r.Speedup(); sp < 2.25 || sp > 2.35 {
			b.Fatalf("speedup %v", sp)
		}
	}
}

// BenchmarkFigure11_Throughput evaluates the three-direction throughput
// experiment.
func BenchmarkFigure11_Throughput(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure11(context.Background(), r.platform, 14, 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 3 {
			b.Fatal("bad points")
		}
	}
}

// BenchmarkAblation_JointCorrelation times the Eq. 5 vs SNR-only study.
func BenchmarkAblation_JointCorrelation(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationJointCorrelation(context.Background(), r.platform, r.traces, 14, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MeasuredVsIdealPatterns times the measured-vs-
// theoretical-pattern study.
func BenchmarkAblation_MeasuredVsIdealPatterns(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationMeasuredVsIdeal(context.Background(), r.platform, r.traces, 14, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ProbeSelection times random vs gain-informed probing.
func BenchmarkAblation_ProbeSelection(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationProbeSelection(context.Background(), r.platform, r.traces, 14, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_RandomBeams times the predefined-vs-random-beams
// link-budget study.
func BenchmarkAblation_RandomBeams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.AblationRandomBeams(int64(i)+1, 6)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].Value <= res.Rows[1].Value {
			b.Fatal("random beams unexpectedly good")
		}
	}
}

// BenchmarkAblation_AdaptiveProbes times the mobility study with the
// adaptive probe-count controller.
func BenchmarkAblation_AdaptiveProbes(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationAdaptiveProbes(context.Background(), r.platform, 40, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkCore_SelectSector times one compressive selection (M=14) from
// captured measurements, the per-training cost on the host.
func BenchmarkCore_SelectSector(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(9)
	probeSet, err := core.RandomProbes(rng, sector.TalonTX(), 14)
	if err != nil {
		b.Fatal(err)
	}
	tr := r.traces[len(r.traces)/2]
	probes := core.ProbesFromMeasurements(probeSet.IDs(), tr.Sweeps[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.platform.Estimator.SelectSector(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEval_TraceTrials times the bounded-parallel trial loop of
// EvaluateTraces at the default worker count versus forced-serial
// execution. Results are identical at any setting; only wall clock
// differs (on multi-core hosts).
func BenchmarkEval_TraceTrials(b *testing.B) {
	r := benchSetup(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"default", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			eval.SetParallelism(bc.workers)
			defer eval.SetParallelism(0)
			rng := stats.NewRNG(12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvaluateTraces(context.Background(), "conference", r.traces, r.platform.Estimator, []int{6, 14, 24}, 2, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDot11ad_FrameRoundTrip times SSW frame serialize + decode.
func BenchmarkDot11ad_FrameRoundTrip(b *testing.B) {
	f := dot11ad.NewSSWFrame(
		dot11ad.MACAddr{1, 2, 3, 4, 5, 6}, dot11ad.MACAddr{6, 5, 4, 3, 2, 1},
		dot11ad.DirectionResponder, 17, 22,
		dot11ad.SSWFeedbackField{SectorSelect: 8, SNRReport: 77},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := f.Serialize()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dot11ad.DecodeFrame(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntenna_Gain times one far-field gain evaluation.
func BenchmarkAntenna_Gain(b *testing.B) {
	arr, err := antenna.New(antenna.TalonConfig(), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	w := arr.SteeringWeights(25, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = arr.Gain(w, 10, 3)
	}
}

// BenchmarkWil_MutualSLS times a full protocol-level mutual sector sweep
// including channel evaluation and frame codecs.
func BenchmarkWil_MutualSLS(b *testing.B) {
	r := benchSetup(b)
	link := r.newChamberLink(b)
	slots := dot11ad.SweepSchedule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.RunSLS(r.platform.DUT, r.platform.Probe, slots, slots); err != nil {
			b.Fatal(err)
		}
	}
}

func (r *benchRig) newChamberLink(b *testing.B) *wil.Link {
	b.Helper()
	dutPose, probePose := testbed.FacingPoses(3, 1.2)
	r.platform.DUT.SetPose(dutPose)
	r.platform.Probe.SetPose(probePose)
	return wil.NewLink(channel.AnechoicChamber(), r.platform.DUT, r.platform.Probe)
}

// BenchmarkRetrainingStudy times the Section 7 retraining-cadence study
// (mobility session simulation for both policies at several cadences).
func BenchmarkRetrainingStudy(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RetrainingStudy(context.Background(), r.platform, 20, 4*time.Second, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockageStudy times the backup-sector blockage experiment
// (multipath estimation with successive interference cancellation).
func BenchmarkBlockageStudy(b *testing.B) {
	r := benchSetup(b)
	rng := stats.NewRNG(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.BlockageStudy(context.Background(), r.platform, 24, 6, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDensityStudy times the dense-deployment pollution model.
func BenchmarkDensityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.DensityStudy(context.Background(), 14, 5.5, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkDensifyStudy times the codebook-densification experiment.
func BenchmarkDensifyStudy(b *testing.B) {
	rng := stats.NewRNG(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.DensifyStudy(context.Background(), 42, 14, []int{34, 63}, 10, rng); err != nil {
			b.Fatal(err)
		}
	}
}
