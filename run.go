package talon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/fault"
	"talon/internal/obs"
	"talon/internal/sector"
)

// Tracing hooks of the public API, re-exported from internal/obs. A
// Tracer observes the stages of a training run (sweep, estimate, force,
// SLS); the default is a zero-allocation no-op.
type (
	// Tracer receives span begin/end callbacks from instrumented code.
	Tracer = obs.Tracer
	// Span is one live span; End closes it.
	Span = obs.Span
	// TraceLabel is one key/value annotation on a span.
	TraceLabel = obs.Label
	// TraceRecorder is a Tracer that records events for inspection —
	// intended for tests and debugging, not hot paths.
	TraceRecorder = obs.Recorder
)

// NopTracer returns the no-op Tracer Run uses by default.
func NopTracer() Tracer { return obs.Nop() }

// Trainer metrics (see README, "Observability").
var (
	metTrainings = obs.NewCounter("trainer_trainings_total",
		"training rounds started (Run and its Train* wrappers)")
	metRetrains = obs.NewCounter("trainer_retrains_total",
		"training rounds beyond the first on the same Trainer")
	metProbesIssued = obs.NewCounter("trainer_probes_issued_total",
		"compressive probes issued across training rounds")
	metProbeMisses = obs.NewCounter("trainer_probe_misses_total",
		"issued probes whose measurement did not come back")
	metTrainSeconds = obs.NewHistogram("trainer_train_seconds",
		"wall time per training round", obs.LatencyBuckets)
	metRunRetries = obs.NewCounter("trainer_retries_total",
		"CSS attempts beyond the first inside one resilient Run (WithRetry)")
	metRunFallbacks = obs.NewCounter("trainer_fallbacks_total",
		"resilient Runs that degraded to the full SSW sweep baseline")
	metSNRCheckFails = obs.NewCounter("trainer_snr_check_failures_total",
		"post-selection SNR verification probes that failed (WithSNRCheck)")
)

// ErrSNRCheckFailed reports a post-selection verification probe (enabled
// by WithSNRCheck) that came back below the required SNR — or not at
// all. Under WithRetry the trainer retries and then degrades instead of
// returning it; without retry enabled, Run surfaces it directly. Match
// with errors.Is.
var ErrSNRCheckFailed = errors.New("post-selection SNR check failed")

// DefaultRetryBackoff is the initial backoff a resilient Run waits (in
// virtual airtime) before its first retry when WithRetry is given a
// non-positive backoff. It doubles on every further retry.
const DefaultRetryBackoff = time.Millisecond

// RunOption configures one Trainer.Run call.
type RunOption func(*runConfig)

type runConfig struct {
	mutual    bool
	backup    bool
	backupSep float64
	tracer    Tracer

	resilient bool
	retries   int
	backoff   time.Duration
	snrCheck  bool
	minSNR    float64
}

// Mutual extends the run to the full protocol exchange: after the
// compressive selection, both sides sweep the probed subset inside one
// sector-level sweep with the choice injected into the feedback fields
// (what TrainMutual did).
func Mutual() RunOption {
	return func(c *runConfig) { c.mutual = true }
}

// WithBackup additionally extracts a backup sector toward a secondary
// propagation path at least minSepDeg degrees away from the primary
// (what TrainWithBackup did with minSepDeg = 18). The result's Backup
// field is populated; check Backup.HasBackup before using it.
func WithBackup(minSepDeg float64) RunOption {
	return func(c *runConfig) { c.backup, c.backupSep = true, minSepDeg }
}

// WithTracer attaches a Tracer to the run; every stage reports a span.
// The default is NopTracer.
func WithTracer(tr Tracer) RunOption {
	return func(c *runConfig) {
		if tr != nil {
			c.tracer = tr
		}
	}
}

// WithRetry makes the run resilient: when a CSS attempt fails with a
// retryable error — too few probes came back, the correlation surface
// was degenerate, an injected transient fault hit, or the WithSNRCheck
// verification rejected the choice — the trainer retries with a fresh
// random probe subset up to n more times, waiting backoff of virtual
// airtime before the first retry and doubling it each further retry.
// When every attempt fails the run degrades gracefully to the standard
// full sector sweep (the paper's baseline) instead of erroring; the
// result's Selection.Degraded and Selection.FallbackReason report that
// the fallback won. A non-positive backoff means DefaultRetryBackoff;
// n <= 0 enables resilience (fallback) without extra CSS attempts.
func WithRetry(n int, backoff time.Duration) RunOption {
	return func(c *runConfig) {
		c.resilient = true
		if n > 0 {
			c.retries = n
		}
		if backoff > 0 {
			c.backoff = backoff
		} else {
			c.backoff = DefaultRetryBackoff
		}
	}
}

// WithSNRCheck verifies each CSS selection before trusting it: the
// trainer probes the chosen sector once more and requires the reported
// SNR to reach minDB. A failed check surfaces as ErrSNRCheckFailed —
// or, under WithRetry, triggers a retry and eventually the full-sweep
// fallback.
func WithSNRCheck(minDB float64) RunOption {
	return func(c *runConfig) { c.snrCheck, c.minSNR = true, minDB }
}

func (c *runConfig) mode() string {
	switch {
	case c.mutual && c.backup:
		return "mutual+backup"
	case c.mutual:
		return "mutual"
	case c.backup:
		return "backup"
	}
	return "train"
}

// RunResult is the outcome of one Trainer.Run: the TrainResult of the
// plain training plus the optional extras the options enabled.
type RunResult struct {
	TrainResult
	// Backup holds the multipath backup selection when WithBackup was
	// requested, nil otherwise.
	Backup *BackupSelection
	// Attempts counts the CSS attempts this run made (1 without
	// retries). A degraded run reports the attempts that failed before
	// the full-sweep fallback took over.
	Attempts int
}

// Degraded reports whether the run abandoned CSS and fell back to the
// full sector sweep (shorthand for Selection.Degraded).
func (r *RunResult) Degraded() bool { return r.Selection.Degraded }

// Run performs one compressive training round from tx toward rx and is
// the single entry point behind Train, TrainMutual and TrainWithBackup:
// it probes a random M-sector subset, estimates the departure angle,
// selects the best transmit sector and (when rx is jailbroken) arms rx's
// feedback override with the choice. Options extend the round — Mutual
// runs the full sweep handshake afterwards, WithBackup extracts a backup
// sector, WithTracer observes the stages, WithRetry adds retries plus
// the full-sweep fallback, WithSNRCheck verifies the choice. The context
// is observed between the stages and inside the correlation grid search;
// a cancelled run returns ctx.Err().
func (t *Trainer) Run(ctx context.Context, tx, rx *Device, opts ...RunOption) (*RunResult, error) {
	cfg := runConfig{tracer: obs.Nop()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	metTrainings.Inc()
	if t.runs > 0 {
		metRetrains.Inc()
	}
	t.runs++
	start := time.Now()
	defer metTrainSeconds.ObserveSince(start)

	run := cfg.tracer.StartSpan("trainer.run", obs.L("mode", cfg.mode()))
	defer run.End()

	attempts := 1
	res, err := t.runOnce(ctx, tx, rx, &cfg)
	if err == nil || !cfg.resilient {
		if res != nil {
			res.Attempts = attempts
		}
		return res, err
	}

	backoff := cfg.backoff
	for attempts <= cfg.retries && retryable(err) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		metRunRetries.Inc()
		attempts++
		retry := cfg.tracer.StartSpan("trainer.retry",
			obs.L("attempt", fmt.Sprintf("%d", attempts)))
		t.link.Wait(backoff)
		backoff *= 2
		res, err = t.runOnce(ctx, tx, rx, &cfg)
		retry.End()
		if err == nil {
			res.Attempts = attempts
			return res, nil
		}
	}
	if !retryable(err) {
		return nil, err
	}
	res, err = t.fallbackSweep(ctx, tx, rx, &cfg, reasonFor(err))
	if res != nil {
		res.Attempts = attempts
	}
	return res, err
}

// runOnce is one CSS attempt: probe a fresh random subset, estimate,
// select, arm the override, optionally verify and run the mutual sweep.
func (t *Trainer) runOnce(ctx context.Context, tx, rx *Device, cfg *runConfig) (*RunResult, error) {
	probeSet, err := core.RandomProbes(t.rng, sector.TalonTX(), t.m)
	if err != nil {
		return nil, err
	}
	probed := probeSet.IDs()

	sweep := cfg.tracer.StartSpan("trainer.sweep")
	meas, err := t.link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	sweep.End()
	if err != nil {
		return nil, err
	}
	metProbesIssued.Add(int64(len(probed)))
	for _, id := range probed {
		if _, ok := meas[id]; !ok {
			metProbeMisses.Inc()
		}
	}

	probes := core.ProbesFromMeasurements(probed, meas)
	res := &RunResult{}
	estimate := cfg.tracer.StartSpan("trainer.estimate")
	if cfg.backup {
		backup, err := t.est.SelectWithBackup(ctx, probes, cfg.backupSep)
		estimate.End()
		if err != nil {
			return nil, err
		}
		res.Backup = &backup
		res.Selection = backup.Primary
	} else {
		sel, err := t.est.SelectSector(ctx, probes)
		estimate.End()
		if err != nil {
			return nil, err
		}
		res.Selection = sel
	}
	res.Sector = res.Selection.Sector
	res.Probed = probed

	if rx.Firmware().OverrideEnabled() {
		force := cfg.tracer.StartSpan("trainer.force")
		err := rx.ForceSector(res.Sector)
		force.End()
		if err != nil {
			return nil, err
		}
	}

	if cfg.snrCheck {
		check := cfg.tracer.StartSpan("trainer.snrcheck")
		err := t.verifySNR(tx, rx, res.Sector, cfg.minSNR)
		check.End()
		if err != nil {
			return nil, err
		}
	}

	if cfg.mutual {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slsSpan := cfg.tracer.StartSpan("trainer.sls")
		slots := dot11ad.SubSweepSchedule(sector.NewSet(probed...))
		sls, err := t.link.RunSLS(tx, rx, slots, slots)
		slsSpan.End()
		if err != nil {
			return nil, err
		}
		res.SLS = sls
	}
	return res, nil
}

// verifySNR probes the selected sector once more and requires the
// reported SNR to reach minDB.
func (t *Trainer) verifySNR(tx, rx *Device, id SectorID, minDB float64) error {
	meas, err := t.link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(sector.NewSet(id)))
	if err != nil {
		return err
	}
	m, ok := meas[id]
	if !ok {
		metSNRCheckFails.Inc()
		return fmt.Errorf("talon: %w: verification probe on sector %s was lost", ErrSNRCheckFailed, id)
	}
	if m.SNR < minDB {
		metSNRCheckFails.Inc()
		return fmt.Errorf("talon: %w: sector %s verified at %.1f dB, need %.1f dB",
			ErrSNRCheckFailed, id, m.SNR, minDB)
	}
	return nil
}

// fallbackSweep is the graceful-degradation path: a standard full
// sector-level sweep with the stock argmax selection — the paper's
// baseline — reported with Degraded set and the failure class that
// forced it.
func (t *Trainer) fallbackSweep(ctx context.Context, tx, rx *Device, cfg *runConfig, reason core.FallbackReason) (*RunResult, error) {
	metRunFallbacks.Inc()
	span := cfg.tracer.StartSpan("trainer.fallback", obs.L("reason", string(reason)))
	defer span.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	slots := dot11ad.SweepSchedule()
	meas, err := t.link.RunTXSS(tx, rx, slots)
	if err != nil {
		return nil, fmt.Errorf("talon: fallback sweep: %w", err)
	}
	probed := sector.TalonTX()
	id, ok := core.SweepSelect(core.ProbesFromMeasurements(probed, meas))
	if !ok {
		return nil, fmt.Errorf("talon: %w: fallback sweep lost every frame", core.ErrTooFewProbes)
	}

	res := &RunResult{}
	res.Selection = core.Selection{
		Sector:         id,
		Gain:           math.NaN(),
		Fallback:       true,
		Degraded:       true,
		FallbackReason: reason,
	}
	res.Sector = id
	res.Probed = probed

	if rx.Firmware().OverrideEnabled() {
		// Transient WMI faults must not sink an otherwise valid
		// selection: retry the override a few times, then carry on
		// without it — only the feedback of the next handshake is lost.
		for i := 0; ; i++ {
			err := rx.ForceSector(id)
			if err == nil {
				break
			}
			if !errors.Is(err, fault.ErrInjected) {
				return nil, err
			}
			if i >= 2 {
				break
			}
			t.link.Wait(cfg.backoff)
		}
	}

	if cfg.mutual {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sls, err := t.link.RunSLS(tx, rx, slots, slots)
		if err != nil {
			return nil, err
		}
		res.SLS = sls
	}
	return res, nil
}

// retryable classifies the failures the resilient path may recover from
// by re-probing: lossy channels (too few probes), uninformative
// measurements (degenerate surface), injected transient faults and a
// rejected verification probe.
func retryable(err error) bool {
	return errors.Is(err, core.ErrTooFewProbes) ||
		errors.Is(err, core.ErrDegenerateSurface) ||
		errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrSNRCheckFailed)
}

// reasonFor maps a retryable failure to the FallbackReason the degraded
// selection reports.
func reasonFor(err error) core.FallbackReason {
	switch {
	case errors.Is(err, ErrSNRCheckFailed):
		return core.FallbackSNRCheck
	case errors.Is(err, core.ErrTooFewProbes):
		return core.FallbackTooFewProbes
	case errors.Is(err, core.ErrDegenerateSurface):
		return core.FallbackDegenerateSurface
	case errors.Is(err, fault.ErrInjected):
		return core.FallbackTransientFault
	}
	return core.FallbackNone
}
