package talon

import (
	"context"
	"time"

	"talon/internal/core"
	"talon/internal/dot11ad"
	"talon/internal/obs"
	"talon/internal/sector"
)

// Tracing hooks of the public API, re-exported from internal/obs. A
// Tracer observes the stages of a training run (sweep, estimate, force,
// SLS); the default is a zero-allocation no-op.
type (
	// Tracer receives span begin/end callbacks from instrumented code.
	Tracer = obs.Tracer
	// Span is one live span; End closes it.
	Span = obs.Span
	// TraceLabel is one key/value annotation on a span.
	TraceLabel = obs.Label
	// TraceRecorder is a Tracer that records events for inspection —
	// intended for tests and debugging, not hot paths.
	TraceRecorder = obs.Recorder
)

// NopTracer returns the no-op Tracer Run uses by default.
func NopTracer() Tracer { return obs.Nop() }

// Trainer metrics (see README, "Observability").
var (
	metTrainings = obs.NewCounter("trainer_trainings_total",
		"training rounds started (Run and its Train* wrappers)")
	metRetrains = obs.NewCounter("trainer_retrains_total",
		"training rounds beyond the first on the same Trainer")
	metProbesIssued = obs.NewCounter("trainer_probes_issued_total",
		"compressive probes issued across training rounds")
	metProbeMisses = obs.NewCounter("trainer_probe_misses_total",
		"issued probes whose measurement did not come back")
	metTrainSeconds = obs.NewHistogram("trainer_train_seconds",
		"wall time per training round", obs.LatencyBuckets)
)

// RunOption configures one Trainer.Run call.
type RunOption func(*runConfig)

type runConfig struct {
	mutual    bool
	backup    bool
	backupSep float64
	tracer    Tracer
}

// Mutual extends the run to the full protocol exchange: after the
// compressive selection, both sides sweep the probed subset inside one
// sector-level sweep with the choice injected into the feedback fields
// (what TrainMutual did).
func Mutual() RunOption {
	return func(c *runConfig) { c.mutual = true }
}

// WithBackup additionally extracts a backup sector toward a secondary
// propagation path at least minSepDeg degrees away from the primary
// (what TrainWithBackup did with minSepDeg = 18). The result's Backup
// field is populated; check Backup.HasBackup before using it.
func WithBackup(minSepDeg float64) RunOption {
	return func(c *runConfig) { c.backup, c.backupSep = true, minSepDeg }
}

// WithTracer attaches a Tracer to the run; every stage reports a span.
// The default is NopTracer.
func WithTracer(tr Tracer) RunOption {
	return func(c *runConfig) {
		if tr != nil {
			c.tracer = tr
		}
	}
}

func (c *runConfig) mode() string {
	switch {
	case c.mutual && c.backup:
		return "mutual+backup"
	case c.mutual:
		return "mutual"
	case c.backup:
		return "backup"
	}
	return "train"
}

// RunResult is the outcome of one Trainer.Run: the TrainResult of the
// plain training plus the optional extras the options enabled.
type RunResult struct {
	TrainResult
	// Backup holds the multipath backup selection when WithBackup was
	// requested, nil otherwise.
	Backup *BackupSelection
}

// Run performs one compressive training round from tx toward rx and is
// the single entry point behind Train, TrainMutual and TrainWithBackup:
// it probes a random M-sector subset, estimates the departure angle,
// selects the best transmit sector and (when rx is jailbroken) arms rx's
// feedback override with the choice. Options extend the round — Mutual
// runs the full sweep handshake afterwards, WithBackup extracts a backup
// sector, WithTracer observes the stages. The context is observed
// between the stages and inside the correlation grid search; a cancelled
// run returns ctx.Err().
func (t *Trainer) Run(ctx context.Context, tx, rx *Device, opts ...RunOption) (*RunResult, error) {
	cfg := runConfig{tracer: obs.Nop()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	metTrainings.Inc()
	if t.runs > 0 {
		metRetrains.Inc()
	}
	t.runs++
	start := time.Now()
	defer metTrainSeconds.ObserveSince(start)

	run := cfg.tracer.StartSpan("trainer.run", obs.L("mode", cfg.mode()))
	defer run.End()

	probeSet, err := core.RandomProbes(t.rng, sector.TalonTX(), t.m)
	if err != nil {
		return nil, err
	}
	probed := probeSet.IDs()

	sweep := cfg.tracer.StartSpan("trainer.sweep")
	meas, err := t.link.RunTXSS(tx, rx, dot11ad.SubSweepSchedule(probeSet))
	sweep.End()
	if err != nil {
		return nil, err
	}
	metProbesIssued.Add(int64(len(probed)))
	for _, id := range probed {
		if _, ok := meas[id]; !ok {
			metProbeMisses.Inc()
		}
	}

	probes := core.ProbesFromMeasurements(probed, meas)
	res := &RunResult{}
	estimate := cfg.tracer.StartSpan("trainer.estimate")
	if cfg.backup {
		backup, err := t.est.SelectWithBackupContext(ctx, probes, cfg.backupSep)
		estimate.End()
		if err != nil {
			return nil, err
		}
		res.Backup = &backup
		res.Selection = backup.Primary
	} else {
		sel, err := t.est.SelectSectorContext(ctx, probes)
		estimate.End()
		if err != nil {
			return nil, err
		}
		res.Selection = sel
	}
	res.Sector = res.Selection.Sector
	res.Probed = probed

	if rx.Firmware().OverrideEnabled() {
		force := cfg.tracer.StartSpan("trainer.force")
		err := rx.ForceSector(res.Sector)
		force.End()
		if err != nil {
			return nil, err
		}
	}

	if cfg.mutual {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slsSpan := cfg.tracer.StartSpan("trainer.sls")
		slots := dot11ad.SubSweepSchedule(sector.NewSet(probed...))
		sls, err := t.link.RunSLS(tx, rx, slots, slots)
		slsSpan.End()
		if err != nil {
			return nil, err
		}
		res.SLS = sls
	}
	return res, nil
}
