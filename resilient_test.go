package talon_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"talon"
	"talon/internal/fault"
)

// firstNDrops loses the first N frames on the link and then goes quiet —
// a blockage that clears between the first CSS attempt and the retry.
type firstNDrops struct {
	fault.Nop
	n int
}

func (d *firstNDrops) DropFrame(fault.FrameEvent) bool {
	if d.n <= 0 {
		return false
	}
	d.n--
	return true
}

func TestRunRetryRecoversFromTransientLoss(t *testing.T) {
	trainer, link, dut, peer := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(7))
	// Lose every probe of the first attempt (M = 14), then clear up.
	link.SetInjector(&firstNDrops{n: 14})

	res, err := trainer.Run(context.Background(), dut, peer,
		talon.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (one retry)", res.Attempts)
	}
	if res.Degraded() {
		t.Fatalf("recovered run reported degraded: %+v", res.Selection)
	}
	if res.Selection.FallbackReason != talon.FallbackNone {
		t.Fatalf("recovered run carries reason %q", res.Selection.FallbackReason)
	}
}

func TestRunDegradesToFullSweepOnPersistentWMIFault(t *testing.T) {
	trainer, link, dut, peer := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(8))
	// Every WMI command times out, so arming the override fails on every
	// CSS attempt; the fallback tolerates that and still selects.
	link.SetInjector(fault.NewWMIFlake(1, 3))

	res, err := trainer.Run(context.Background(), dut, peer,
		talon.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() {
		t.Fatalf("run under persistent WMI faults did not degrade: %+v", res.Selection)
	}
	if res.Selection.FallbackReason != talon.FallbackTransientFault {
		t.Fatalf("reason = %q, want %q", res.Selection.FallbackReason, talon.FallbackTransientFault)
	}
	if !res.Selection.Fallback {
		t.Fatal("degraded selection must be a sweep-argmax fallback")
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (initial + 2 retries)", res.Attempts)
	}
	if len(res.Probed) != len(talon.TalonTXSectors()) {
		t.Fatalf("fallback probed %d sectors, want the full sweep", len(res.Probed))
	}
	if !res.Sector.Valid() {
		t.Fatalf("degraded run selected invalid sector %v", res.Sector)
	}
}

func TestRunSNRCheckSurfacesSentinelWithoutRetry(t *testing.T) {
	trainer, _, dut, peer := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(9))
	_, err := trainer.Run(context.Background(), dut, peer, talon.WithSNRCheck(1000))
	if !errors.Is(err, talon.ErrSNRCheckFailed) {
		t.Fatalf("err = %v, want wrap of ErrSNRCheckFailed", err)
	}
}

func TestRunSNRCheckDegradesUnderRetry(t *testing.T) {
	trainer, _, dut, peer := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(10))
	res, err := trainer.Run(context.Background(), dut, peer,
		talon.WithSNRCheck(1000), talon.WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() || res.Selection.FallbackReason != talon.FallbackSNRCheck {
		t.Fatalf("selection = %+v, want degraded with snr-check reason", res.Selection)
	}
	// The degraded selection renders its reason in both text forms.
	if s := res.Selection.String(); s == "" || res.Selection.FallbackReason == talon.FallbackNone {
		t.Fatalf("degraded selection String() = %q", s)
	}
	raw, err := res.Selection.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(raw); !strings.Contains(got, `"degraded":true`) || !strings.Contains(got, `"fallback_reason":"snr-check"`) {
		t.Fatalf("selection JSON missing degradation fields: %s", got)
	}
}

func TestRunWithRetryMatchesPlainRunOnCleanChannel(t *testing.T) {
	t1, _, dut1, peer1 := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(33))
	t2, _, dut2, peer2 := buildTrainer(t, talon.AnechoicChamber(), talon.WithM(14), talon.WithSeed(33))

	plain, err := t1.Run(context.Background(), dut1, peer1)
	if err != nil {
		t.Fatal(err)
	}
	resilient, err := t2.Run(context.Background(), dut2, peer2, talon.WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sector != resilient.Sector {
		t.Fatalf("WithRetry changed a clean-channel run: %v vs %v", plain.Sector, resilient.Sector)
	}
	if resilient.Attempts != 1 {
		t.Fatalf("clean channel took %d attempts", resilient.Attempts)
	}
}
